"""MemorySystem facade: virtual accesses through MMU + caches + bus.

Two access styles:

* **trace** accesses (`touch`, `read32`, `write32`): every kernel-path
  load/store goes through TLB, walker and caches individually — this is
  what makes the Table III entry/exit costs emerge from cache state.
* **bulk** accesses (`sample_block`): guest workloads execute millions of
  instructions; we push a 1/N sample of their memory stream through the
  real cache/TLB models (polluting them realistically) and extrapolate the
  latency of the unsampled remainder from the sampled mean.
"""

from __future__ import annotations

import numpy as np

from ..cache.hierarchy import AccessKind, CacheHierarchy
from ..common.errors import SimulationError
from ..common.params import PlatformParams
from .mmu import Mmu
from .phys import Bus, FrameAllocator


class MemorySystem:
    def __init__(self, params: PlatformParams) -> None:
        self.params = params
        self.bus = Bus(params.memmap)
        self.caches = CacheHierarchy(params)
        self.mmu = Mmu(self.bus, self.caches, params.tlb)
        mm = params.memmap
        #: Kernel-reserved DRAM carve-out for page tables & kernel objects.
        self.kernel_frames = FrameAllocator(mm.dram_base, 32 * 1024 * 1024)
        #: Remaining DRAM handed to VMs.
        self.guest_frames = FrameAllocator(mm.dram_base + 32 * 1024 * 1024,
                                           mm.dram_size - 32 * 1024 * 1024)
        # Fill-pressure amplification state (see sample_block).
        import numpy as _np
        self._press_rng = _np.random.default_rng(0xF111)
        self._l2_fill_acc = 0
        self._tlb_fill_acc = 0
        self._l2_press_threshold = params.l2.sets * params.l2.ways // 2
        self._tlb_press_threshold = params.tlb.entries // 2
        # Fast-path toggle (docs/PERFORMANCE.md): when on, sample_block
        # runs a fused single-loop reformulation of translate+access and
        # the MMU memoizes walk results.  Cycle-for-cycle identical to the
        # slow path by construction; tests/mem/test_fastpath.py proves it.
        self.fastpath = params.fastpath
        self.mmu.fastpath = params.fastpath
        #: Cycles charged through the batched bulk path (fast path only).
        self.batched_cycles = 0
        self._m_batched = None

    def attach_metrics(self, metrics) -> None:
        """Register ``sim.fastpath.*`` counters (called by the kernel at
        boot so they exist at zero even before any bulk traffic)."""
        self._m_batched = metrics.counter("sim.fastpath.batched_cycles")
        self.mmu.attach_metrics(metrics)

    # -- trace-accurate accesses -------------------------------------------

    def touch(self, vaddr: int, *, write: bool = False, privileged: bool,
              fetch: bool = False) -> int:
        """Timing-only access; returns cycles. May raise ArchFault."""
        mmu = self.mmu
        if self.fastpath and mmu.enabled:
            # Fused common case: TLB hit, access permitted, cacheable.
            # The TLB scan is non-mutating until permission and device
            # checks pass, so any fallthrough to the slow path below
            # replays the identical sequence of state changes.
            tlb = mmu.tlb
            vpn = vaddr >> 12
            entries = tlb._sets[vpn % tlb._nsets]
            e = None
            i = 0
            for i, cand in enumerate(entries):
                if cand.vpn == vpn and (cand.global_ or cand.asid == mmu.asid):
                    e = cand
                    break
            if e is not None and mmu._allow[(privileged, write)][e.perm]:
                paddr = e.pfn << 12 | (vaddr & 0xFFF)
                if not self.bus.is_device(paddr):
                    tlb.stats.hits += 1
                    if i:
                        entries.pop(i)
                        entries.insert(0, e)
                    caches = self.caches
                    l1 = caches.l1i if fetch else caches.l1d
                    tag = paddr >> l1._offset_bits
                    idx1 = tag % l1._sets
                    s1 = l1._tags[idx1]
                    st1 = l1.stats
                    if tag in s1:
                        st1.hits += 1
                        if s1[0] != tag:
                            s1.remove(tag)
                            s1.insert(0, tag)
                        if write:
                            l1._dirty[idx1].add(tag)
                        return caches._lat_l1
                    st1.misses += 1
                    victim_wb = None
                    if len(s1) >= l1._ways:
                        victim = s1.pop()
                        st1.evictions += 1
                        l1._resident -= 1
                        d = l1._dirty[idx1]
                        if victim in d:
                            d.discard(victim)
                            st1.writebacks += 1
                            victim_wb = victim
                    s1.insert(0, tag)
                    l1._resident += 1
                    if write:
                        l1._dirty[idx1].add(tag)
                    lat = caches._lat_l1 + caches._lat_l2
                    if victim_wb is not None:
                        # Victim address reconstruction uses the L1D line
                        # size for both L1s, as CacheHierarchy.access does.
                        caches.l2.fill(
                            victim_wb << (self.params.l1d.line.bit_length() - 1),
                            write=True)
                    hit2, victim2 = caches.l2.lookup(paddr, write=False)
                    if not hit2:
                        caches.dram_accesses += 1
                        lat += caches._lat_dram
                        if victim2 is not None:
                            lat += caches._lat_dram // 4
                    return lat
        paddr, cycles = self.mmu.translate(vaddr, privileged=privileged,
                                           write=write, fetch=fetch)
        kind = AccessKind.FETCH if fetch else AccessKind.DATA
        if not self.bus.is_device(paddr):
            cycles += self.caches.access(paddr, write=write, kind=kind)
        else:
            # Device accesses are uncached; charge a bus round-trip.
            cycles += self.params.cpu.dram // 2
        return cycles

    def read32(self, vaddr: int, *, privileged: bool) -> tuple[int, int]:
        """Functional timed read; returns (value, cycles)."""
        paddr, cycles = self.mmu.translate(vaddr, privileged=privileged,
                                           write=False)
        if self.bus.is_device(paddr):
            cycles += self.params.cpu.dram // 2
        else:
            cycles += self.caches.access(paddr, write=False, kind=AccessKind.DATA)
        return self.bus.read32(paddr), cycles

    def write32(self, vaddr: int, value: int, *, privileged: bool) -> int:
        """Functional timed write; returns cycles."""
        paddr, cycles = self.mmu.translate(vaddr, privileged=privileged,
                                           write=True)
        if self.bus.is_device(paddr):
            cycles += self.params.cpu.dram // 2
        else:
            cycles += self.caches.access(paddr, write=True, kind=AccessKind.DATA)
        self.bus.write32(paddr, value)
        return cycles

    # -- physical-side accesses (kernel with MMU context of its own) -------

    def touch_phys(self, paddr: int, *, write: bool = False,
                   fetch: bool = False) -> int:
        kind = AccessKind.FETCH if fetch else AccessKind.DATA
        return self.caches.access(paddr, write=write, kind=kind)

    # -- bulk workload traffic ---------------------------------------------

    def sample_block(self, vaddrs: np.ndarray, *, write_mask: np.ndarray,
                     privileged: bool, scale: int) -> int:
        """Push sampled accesses through MMU+caches; extrapolate total cycles.

        ``vaddrs``: sampled virtual addresses (1/scale of the real stream).
        Returns extrapolated cycles for the *full* stream's memory latency.
        """
        if len(vaddrs) == 0:
            return 0
        l2_misses0 = self.caches.l2.stats.misses
        tlb_misses0 = self.mmu.tlb.stats.misses
        if self.fastpath:
            total = self._sample_fast(vaddrs, write_mask, privileged)
            self.batched_cycles += total * scale
            if self._m_batched is not None:
                self._m_batched.inc(total * scale)
        else:
            total = 0
            translate = self.mmu.translate
            caches_access = self.caches.access
            for va, w in zip(vaddrs.tolist(), write_mask.tolist()):
                paddr, c = translate(va, privileged=privileged, write=w)
                c += caches_access(paddr, write=w, kind=AccessKind.DATA)
                total += c
        # Fill-pressure amplification: the 1/scale sample produced some L2
        # fills and TLB walks; the *unsampled* remainder of the stream
        # produced ~(scale-1)x more.  Model their eviction effect
        # statistically by dropping random sets once enough amplified
        # fills accumulate.  This is what makes kernel-path lines go cold
        # when the aggregate working set overflows L2 (Table III's
        # mechanism) without tracing every access.
        # Eviction pressure in an 8-way LRU cache is strongly nonlinear in
        # occupancy: below ~60% the victim is almost always a dead line of
        # the polluter itself.  Gate the amplification on occupancy so a
        # cache-fitting footprint (1 guest) exerts no pressure while an
        # over-subscribed one (3-4 guests) exerts full pressure.
        l2 = self.caches.l2
        occ = l2.resident_lines / (l2.params.sets * l2.params.ways)
        l2_gate = min(1.0, max(0.0, (occ - 0.6) / 0.35))
        tlb = self.mmu.tlb
        tlb_occ = tlb.resident / tlb.params.entries
        tlb_gate = min(1.0, max(0.0, (tlb_occ - 0.6) / 0.35))
        self._l2_fill_acc += int(
            (self.caches.l2.stats.misses - l2_misses0) * (scale - 1) * l2_gate)
        self._tlb_fill_acc += int(
            (self.mmu.tlb.stats.misses - tlb_misses0) * (scale - 1) * tlb_gate)
        if self._l2_fill_acc >= self._l2_press_threshold:
            dropped = self.caches.l2.clear_random_sets(0.5, self._press_rng)
            # Pre-credit the refill of the dropped lines: their re-fetch
            # misses are a *consequence* of this modelled eviction, not new
            # pressure — otherwise the model feeds back into permanent
            # thrash even for cache-fitting footprints.
            self._l2_fill_acc = -dropped * (scale - 1)
        if self._tlb_fill_acc >= self._tlb_press_threshold:
            dropped = self.mmu.tlb.clear_random_sets(0.5, self._press_rng)
            self._tlb_fill_acc = -dropped * (scale - 1)
        return total * scale

    def _sample_fast(self, vaddrs: np.ndarray, write_mask: np.ndarray,
                     privileged: bool) -> int:
        """Fused reformulation of the per-access translate+access loop.

        One Python loop body performs the TLB lookup, the flattened DACR/AP
        permission test and the L1D/L2 cache walk inline, mutating the
        exact same model state (LRU order, dirty bits, stats, occupancy) in
        the exact same order as ``Mmu.translate`` + ``CacheHierarchy.access``
        would.  Per-level stats are accumulated in locals and flushed once
        per block (or on a fault unwinding mid-block), which is
        unobservable: nothing can run between the accesses of one block.
        Uncommon work — TLB misses, permission faults — falls back to the
        regular MMU paths so faults carry identical reasons and costs.
        """
        mmu = self.mmu
        caches = self.caches
        total = 0
        th = tm = 0                          # TLB hit/miss deltas
        h1 = m1 = ev1 = wb1 = res1 = 0       # L1D stat deltas
        h2 = m2 = ev2 = wb2 = res2 = 0       # L2 stat deltas
        dram_acc = 0
        enabled = mmu.enabled
        asid = mmu.asid
        walk = mmu._walk
        tlb = mmu.tlb
        tlb_sets = tlb._sets
        tlb_nsets = tlb._nsets
        tlb_insert = tlb.insert
        ar = mmu.allow_table(privileged=privileged, write=False)
        aw = mmu.allow_table(privileged=privileged, write=True)
        l1 = caches.l1d
        l1_tags = l1._tags
        l1_dirty = l1._dirty
        l1_nsets = l1._sets
        l1_ways = l1._ways
        l1_shift = l1._offset_bits
        l2 = caches.l2
        l2_tags = l2._tags
        l2_dirty = l2._dirty
        l2_nsets = l2._sets
        l2_ways = l2._ways
        l2_shift = l2._offset_bits
        lat1 = caches._lat_l1
        lat2 = caches._lat_l2
        lat_dram = caches._lat_dram
        wb_cost = lat_dram // 4
        try:
            for va, w in zip(vaddrs.tolist(), write_mask.tolist()):
                c = 0
                if enabled:
                    vpn = va >> 12
                    entries = tlb_sets[vpn % tlb_nsets]
                    e = None
                    if entries:
                        e0 = entries[0]
                        if e0.vpn == vpn and (e0.global_ or e0.asid == asid):
                            e = e0
                            th += 1
                        else:
                            for i in range(1, len(entries)):
                                cand = entries[i]
                                if cand.vpn == vpn and (cand.global_
                                                        or cand.asid == asid):
                                    e = cand
                                    th += 1
                                    entries.pop(i)
                                    entries.insert(0, cand)
                                    break
                    if e is None:
                        tm += 1
                        e, c = walk(va, fetch=False, write=w)
                        tlb_insert(e)
                    if not (aw if w else ar)[e.perm]:
                        # Replicate the exact fault (reason string, cost).
                        mmu._check(va, e, privileged=privileged, write=w,
                                   fetch=False, cycles=c)
                        raise SimulationError(
                            "fastpath allow table out of sync with Mmu._check")
                    paddr = e.pfn << 12 | (va & 0xFFF)
                else:
                    paddr = va
                tag = paddr >> l1_shift
                idx1 = tag % l1_nsets
                s1 = l1_tags[idx1]
                if s1 and s1[0] == tag:
                    h1 += 1
                    total += c + lat1
                    if w:
                        l1_dirty[idx1].add(tag)
                    continue
                if tag in s1:
                    h1 += 1
                    s1.remove(tag)
                    s1.insert(0, tag)
                    total += c + lat1
                    if w:
                        l1_dirty[idx1].add(tag)
                    continue
                m1 += 1
                victim_wb = None
                if len(s1) >= l1_ways:
                    victim = s1.pop()
                    ev1 += 1
                    res1 -= 1
                    d = l1_dirty[idx1]
                    if victim in d:
                        d.discard(victim)
                        wb1 += 1
                        victim_wb = victim
                s1.insert(0, tag)
                res1 += 1
                if w:
                    l1_dirty[idx1].add(tag)
                lat = c + lat1 + lat2
                if victim_wb is not None:
                    # L1 victim writeback lands in L2 (fill, write=True);
                    # a dirty L2 victim displaced by it is dropped, exactly
                    # like CacheLevel.fill with its return value unused.
                    tagv = (victim_wb << l1_shift) >> l2_shift
                    idxv = tagv % l2_nsets
                    sv = l2_tags[idxv]
                    if tagv in sv:
                        if sv[0] != tagv:
                            sv.remove(tagv)
                            sv.insert(0, tagv)
                    else:
                        if len(sv) >= l2_ways:
                            v2 = sv.pop()
                            ev2 += 1
                            res2 -= 1
                            dv = l2_dirty[idxv]
                            if v2 in dv:
                                dv.discard(v2)
                                wb2 += 1
                        sv.insert(0, tagv)
                        res2 += 1
                    l2_dirty[idxv].add(tagv)
                tag2 = paddr >> l2_shift
                idx2 = tag2 % l2_nsets
                s2 = l2_tags[idx2]
                if s2 and s2[0] == tag2:
                    h2 += 1
                elif tag2 in s2:
                    h2 += 1
                    s2.remove(tag2)
                    s2.insert(0, tag2)
                else:
                    m2 += 1
                    victim2_wb = None
                    if len(s2) >= l2_ways:
                        v2 = s2.pop()
                        ev2 += 1
                        res2 -= 1
                        d2 = l2_dirty[idx2]
                        if v2 in d2:
                            d2.discard(v2)
                            wb2 += 1
                            victim2_wb = v2
                    s2.insert(0, tag2)
                    res2 += 1
                    dram_acc += 1
                    lat += lat_dram
                    if victim2_wb is not None:
                        lat += wb_cost
                total += lat
        finally:
            # Flush the batched stat deltas even when a fault unwinds the
            # loop, so the visible state matches the slow path exactly.
            ts = tlb.stats
            ts.hits += th
            ts.misses += tm
            s = l1.stats
            s.hits += h1
            s.misses += m1
            s.evictions += ev1
            s.writebacks += wb1
            l1._resident += res1
            s = l2.stats
            s.hits += h2
            s.misses += m2
            s.evictions += ev2
            s.writebacks += wb2
            l2._resident += res2
            caches.dram_accesses += dram_acc
        return total
