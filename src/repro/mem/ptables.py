"""Page-table construction API over simulated DRAM.

The kernel's memory manager uses this to build/patch per-VM address spaces;
descriptors are really encoded into DRAM words, so the MMU walker decodes
exactly what was written (tests cross-check encode/decode through memory).
Timing is charged by the *caller* (kernel paths touch the descriptor
addresses through the cache model); this module is purely functional.
"""

from __future__ import annotations

from ..common.errors import DeviceError
from ..common.units import is_aligned
from .descriptors import (
    AP,
    L1_FAULT,
    L1_TABLE_BYTES,
    L2_FAULT,
    L2_TABLE_BYTES,
    L1Type,
    PAGE_SIZE,
    SECTION_SIZE,
    decode_l1,
    encode_l1_page_table,
    encode_l1_section,
    encode_l2_small_page,
    l1_index,
    l2_index,
)
from .phys import Bus, FrameAllocator


class PageTable:
    """One ARMv7 short-descriptor address space rooted at a 16 KB L1 table."""

    def __init__(self, bus: Bus, frames: FrameAllocator, name: str = "pt") -> None:
        self.bus = bus
        self.frames = frames
        self.name = name
        self.l1_base = frames.alloc(L1_TABLE_BYTES, align=16 * 1024)
        # Block-fill the fresh table with fault descriptors: one functional
        # write instead of 4096 (tables always live in DRAM; this module
        # charges no timing, so only the resulting bytes matter).
        bus.dram.write_bytes(
            self.l1_base, L1_FAULT.to_bytes(4, "little") * (L1_TABLE_BYTES // 4))
        #: L2 table base per L1 index (host-side cache of what's in memory).
        self._l2_tables: dict[int, int] = {}
        #: Descriptor words written since creation (kernel charges timing per word).
        self.words_written = 0

    # -- mapping ------------------------------------------------------------

    def map_section(self, va: int, pa: int, *, ap: AP, domain: int,
                    ng: bool = True) -> None:
        """Install a 1 MB section mapping."""
        if not is_aligned(va, SECTION_SIZE):
            raise DeviceError(f"section VA {va:#x} not 1MB aligned")
        self._write_l1(l1_index(va), encode_l1_section(pa, ap=ap, domain=domain, ng=ng))

    def map_page(self, va: int, pa: int, *, ap: AP, domain: int,
                 ng: bool = True) -> None:
        """Install a 4 KB small-page mapping (allocating an L2 table if needed)."""
        if not is_aligned(va, PAGE_SIZE):
            raise DeviceError(f"page VA {va:#x} not 4KB aligned")
        idx1 = l1_index(va)
        l2_base = self._l2_tables.get(idx1)
        if l2_base is None:
            current = decode_l1(self.bus.read32(self.l1_base + idx1 * 4))
            if current.kind == L1Type.SECTION:
                raise DeviceError(
                    f"{self.name}: VA {va:#x} already covered by a section")
            l2_base = self.frames.alloc(L2_TABLE_BYTES, align=1024)
            self.bus.dram.write_bytes(
                l2_base, L2_FAULT.to_bytes(4, "little") * (L2_TABLE_BYTES // 4))
            self._l2_tables[idx1] = l2_base
            self._write_l1(idx1, encode_l1_page_table(l2_base, domain=domain))
        self._write_l2(l2_base, l2_index(va), encode_l2_small_page(pa, ap=ap, ng=ng))

    def unmap_page(self, va: int) -> bool:
        """Remove a 4 KB mapping; returns True when something was mapped."""
        idx1 = l1_index(va)
        l2_base = self._l2_tables.get(idx1)
        if l2_base is None:
            return False
        addr = l2_base + l2_index(va) * 4
        had = self.bus.read32(addr) != L2_FAULT
        self.bus.write32(addr, L2_FAULT)
        self.words_written += 1
        return had

    def unmap_section(self, va: int) -> bool:
        idx1 = l1_index(va)
        had = self.bus.read32(self.l1_base + idx1 * 4) != L1_FAULT
        self._write_l1(idx1, L1_FAULT)
        self._l2_tables.pop(idx1, None)
        return had

    # -- addresses the kernel touches for timing --------------------------

    def l1_entry_addr(self, va: int) -> int:
        return self.l1_base + l1_index(va) * 4

    def l2_entry_addr(self, va: int) -> int | None:
        l2_base = self._l2_tables.get(l1_index(va))
        return None if l2_base is None else l2_base + l2_index(va) * 4

    # -- internals ---------------------------------------------------------

    def _write_l1(self, idx: int, word: int) -> None:
        self.bus.write32(self.l1_base + idx * 4, word)
        self.words_written += 1

    def _write_l2(self, l2_base: int, idx: int, word: int) -> None:
        self.bus.write32(l2_base + idx * 4, word)
        self.words_written += 1
