"""ARMv7 short-descriptor page-table entry encode/decode + DACR helpers.

A faithful (if simplified: no TEX/cacheability attribute bits, AP modelled
as the classic AP[1:0] field) implementation of the two-level translation
scheme the paper relies on:

* L1 table: 4096 word entries, one per 1 MB of virtual space; an entry is
  a *fault*, a 1 MB *section*, or a pointer to an L2 *page table*.
* L2 table: 256 word entries, one per 4 KB *small page*.
* Each mapping carries an access-permission field (AP) and, at L1 level,
  one of 16 *domains*; the Domain Access Control Register decides whether
  the AP field is even consulted (Table II of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from ..common.errors import DeviceError

L1_ENTRIES = 4096
L2_ENTRIES = 256
L1_TABLE_BYTES = L1_ENTRIES * 4
L2_TABLE_BYTES = L2_ENTRIES * 4

SECTION_SIZE = 1 << 20
PAGE_SIZE = 1 << 12


class AP(IntEnum):
    """Access permissions (AP[1:0]); checked only for *client* domains."""

    NONE = 0          # no access from any level
    PRIV_ONLY = 1     # PL1 read/write, PL0 none
    PRIV_RW_USER_RO = 2
    FULL = 3          # PL1 and PL0 read/write


class DomainType(IntEnum):
    """DACR field values per domain."""

    NO_ACCESS = 0b00  # any access generates a domain fault
    CLIENT = 0b01     # accesses checked against the AP bits
    MANAGER = 0b11    # accesses never checked (use with care)


class L1Type(IntEnum):
    FAULT = 0b00
    PAGE_TABLE = 0b01
    SECTION = 0b10


def l1_index(vaddr: int) -> int:
    return (vaddr >> 20) & 0xFFF


def l2_index(vaddr: int) -> int:
    return (vaddr >> 12) & 0xFF


# -- encoding ------------------------------------------------------------

def encode_l1_section(paddr: int, *, ap: AP, domain: int, ng: bool = True) -> int:
    """1 MB section descriptor. ``ng`` = non-global (ASID-tagged in TLB)."""
    if paddr & (SECTION_SIZE - 1):
        raise DeviceError(f"section base {paddr:#x} not 1MB aligned")
    if not 0 <= domain < 16:
        raise DeviceError(f"domain {domain} out of range")
    return (paddr & 0xFFF0_0000) | (int(ng) << 17) | (int(ap) << 10) \
        | ((domain & 0xF) << 5) | int(L1Type.SECTION)


def encode_l1_page_table(l2_base: int, *, domain: int) -> int:
    """Pointer to an L2 table (which must be 1 KB aligned)."""
    if l2_base & 0x3FF:
        raise DeviceError(f"L2 table base {l2_base:#x} not 1KB aligned")
    if not 0 <= domain < 16:
        raise DeviceError(f"domain {domain} out of range")
    return (l2_base & 0xFFFF_FC00) | ((domain & 0xF) << 5) | int(L1Type.PAGE_TABLE)


def encode_l2_small_page(paddr: int, *, ap: AP, ng: bool = True) -> int:
    """4 KB small-page descriptor."""
    if paddr & (PAGE_SIZE - 1):
        raise DeviceError(f"page base {paddr:#x} not 4KB aligned")
    return (paddr & 0xFFFF_F000) | (int(ng) << 11) | (int(ap) << 4) | 0b10


L1_FAULT = 0
L2_FAULT = 0


# -- decoding ------------------------------------------------------------

@dataclass(frozen=True)
class L1Entry:
    kind: L1Type
    base: int = 0          # section base or L2 table base
    ap: AP = AP.NONE       # sections only
    domain: int = 0
    ng: bool = True


@dataclass(frozen=True)
class L2Entry:
    valid: bool
    base: int = 0
    ap: AP = AP.NONE
    ng: bool = True


def decode_l1(word: int) -> L1Entry:
    kind = word & 0b11
    if kind == L1Type.SECTION:
        return L1Entry(
            L1Type.SECTION,
            base=word & 0xFFF0_0000,
            ap=AP((word >> 10) & 0b11),
            domain=(word >> 5) & 0xF,
            ng=bool((word >> 17) & 1),
        )
    if kind == L1Type.PAGE_TABLE:
        return L1Entry(
            L1Type.PAGE_TABLE,
            base=word & 0xFFFF_FC00,
            domain=(word >> 5) & 0xF,
        )
    return L1Entry(L1Type.FAULT)


def decode_l2(word: int) -> L2Entry:
    if word & 0b10:
        return L2Entry(
            True,
            base=word & 0xFFFF_F000,
            ap=AP((word >> 4) & 0b11),
            ng=bool((word >> 11) & 1),
        )
    return L2Entry(False)


# -- DACR ------------------------------------------------------------------

def dacr_set(dacr: int, domain: int, dtype: DomainType) -> int:
    """Return ``dacr`` with ``domain``'s 2-bit field replaced."""
    if not 0 <= domain < 16:
        raise DeviceError(f"domain {domain} out of range")
    shift = domain * 2
    return (dacr & ~(0b11 << shift)) | (int(dtype) << shift)


def dacr_get(dacr: int, domain: int) -> DomainType:
    raw = (dacr >> (domain * 2)) & 0b11
    # 0b10 is reserved in the architecture; treat as NO_ACCESS.
    return DomainType(raw) if raw in (0, 1, 3) else DomainType.NO_ACCESS
