"""Instruction budgets of the modelled uC/OS-II paths.

Like :mod:`repro.kernel.costs`, these are issue costs; cache/TLB penalties
accrue on top through the memory model at the guest's own code/data
addresses.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class UcosCosts:
    tick_handler: int = 180       # OSTimeTick: walk TCBs, decrement delays
    ctx_switch: int = 120         # OSCtxSw: save/restore task frame
    sched_pick: int = 45          # OS_Sched: ready-bitmap scan
    sem_pend: int = 65
    sem_post: int = 55
    isr_entry: int = 85           # OSIntEnter + vector to handler
    isr_exit: int = 60            # OSIntExit (may context-switch)
    hypercall_wrapper: int = 22   # paravirt patch: marshal args + SVC
    idle_loop: int = 8000         # one idle-task spin chunk (coarse grain:
                                  # keeps simulation overhead bounded while
                                  # idling at ~12 us granularity)
    api_glue: int = 35            # hardware-task API bookkeeping per call
    fault_handler: int = 150      # guest page-fault service (Section IV-E)


UCOS_COSTS = UcosCosts()

# Code-layout offsets within the guest kernel image (I-cache placement).
CODE_TICK = 0x0200
CODE_CTXSW = 0x0800
CODE_SCHED = 0x0C00
CODE_SEM = 0x1000
CODE_ISR = 0x1400
CODE_HC_WRAPPER = 0x1800
CODE_IDLE = 0x1C00
CODE_API = 0x2000
CODE_FAULT = 0x2400
