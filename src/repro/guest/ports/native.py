"""Native (non-virtualized) uC/OS-II port — the baseline of Table III.

The *same* uCOS core and the *same* allocation algorithm run directly on
the machine: uCOS in SVC mode on a flat address space, the Hardware Task
Manager as a plain OS function.  Consequently there is no manager
entry/exit cost (no memory-space switch), no PL-IRQ distribution cost (the
IRQ vectors straight into the OS), and the manager skips all page-table
work — exactly the differences the paper attributes the native column to.
"""

from __future__ import annotations

from ...common.errors import DeviceError, GuestPanic
from ...fpga.controller import CTL_STRIDE
from ...gic import gic as gicdev
from ...gic.irqs import IRQ_PCAP_DONE, IRQ_PRIVATE_TIMER, SPURIOUS_IRQ, pl_line
from ...kernel import layout as KL
from ...kernel.hypercalls import Hc, HcStatus
from ...machine import GIC_BASE, Machine
from ...obs.metrics import MetricsRegistry
from ...obs.trace import Tracer
from ...mem.descriptors import AP, DomainType, SECTION_SIZE, dacr_set
from ...mem.ptables import PageTable
from ..costs import CODE_HC_WRAPPER, UCOS_COSTS as UC
from .. import layout_guest as GL
from ..exec import GuestExecutor
from ..ucos import Tcb, Ucos
from ...hwmgr.alloc import AllocRequest, Allocator
from ...hwmgr.tables import HardwareTaskTable, PrrTable

_ICCIAR = GIC_BASE + gicdev.ICCIAR
_ICCEOIR = GIC_BASE + gicdev.ICCEOIR
_ICDISER = GIC_BASE + gicdev.ICDISER
_ICDICER = GIC_BASE + gicdev.ICDICER

#: Where the native manager's code lives inside the OS image (a uCOS
#: function, not a separate service).
MANAGER_FN_OFF = 0x3000


class NativeSystem:
    """Bare-metal uCOS + in-OS hardware-task manager on one Machine."""

    def __init__(self, machine: Machine, os: Ucos, *, trace: bool = True) -> None:
        self.machine = machine
        self.os = os
        self.cpu = machine.cpu
        self.sim = machine.sim
        self.tracer = Tracer(enabled=trace)
        self.tracer.bind(self.sim.clock)
        self.metrics = MetricsRegistry()
        self.phys_base = machine.mem.guest_frames.alloc(16 << 20, align=1 << 20)
        self.exec = GuestExecutor(self.cpu, addr_base=self.phys_base,
                                  stream=f"native-{os.name}")
        os.port = self
        os.hwdata_pa = self.phys_base + GL.HWDATA_VA
        self._tick_cycles = machine.params.cpu.hz // os.tick_hz
        self._mgr_port = _NativeManagerPort(self)
        task_table = HardwareTaskTable.build(
            machine.bitstreams, machine.prrs, machine.pcap.transfer_cycles,
            row_base=self.phys_base + GL.KERNEL_DATA + 0x2000)
        prr_table = PrrTable(machine.prrs,
                             row_base=self.phys_base + GL.KERNEL_DATA + 0x3000)
        self.allocator = Allocator(self._mgr_port, task_table, prr_table,
                                   machine.prrs)
        self.booted = False
        self.halted = False
        self.irq_count = 0

    # -- boot ---------------------------------------------------------------

    def boot(self) -> None:
        cpu = self.cpu
        pt = PageTable(self.machine.mem.bus, self.machine.mem.kernel_frames,
                       name="native-flat")
        # Identity map low DRAM + device windows; OS runs privileged.
        for off in range(0, KL.KERNEL_LINEAR_SIZE, SECTION_SIZE):
            pt.map_section(KL.KERNEL_BASE + off, KL.KERNEL_BASE + off,
                           ap=AP.PRIV_ONLY, domain=0, ng=False)
        for base in (GIC_BASE & ~(SECTION_SIZE - 1),
                     0xF800_0000,
                     0xE000_0000,
                     self.machine.params.memmap.prr_reg_base):
            pt.map_section(base, base, ap=AP.PRIV_ONLY, domain=0, ng=False)
        sys = cpu.sysregs
        cpu.vbar = self.phys_base + GL.KERNEL_CODE   # uCOS's own vectors
        sys.write("TTBR0", pt.l1_base, privileged=True)
        sys.write("DACR", dacr_set(0, 0, DomainType.CLIENT), privileged=True)
        sys.write("CONTEXTIDR", 0, privileged=True)
        sys.write("SCTLR", 1, privileged=True)
        cpu.irq_masked = False
        cpu.vfp.enable()                 # full authority: VFP always on
        cpu.vfp.owner = 0
        # Enable timer + PCAP IRQs; PL lines are enabled per allocation.
        for irq in (IRQ_PRIVATE_TIMER, IRQ_PCAP_DONE):
            self.machine.gic.set_enable(irq, True)
        self.machine.pcap.attach_obs(tracer=self.tracer, metrics=self.metrics)
        self.sim.attach_metrics(self.metrics)
        self.machine.private_timer.program(self._tick_cycles)
        self.booted = True

    # -- main loop -----------------------------------------------------------------

    def run(self, *, until_cycles: int | None = None, until=None,
            max_iterations: int = 10_000_000) -> None:
        if not self.booted:
            raise DeviceError("boot() first")
        for _ in range(max_iterations):
            if until_cycles is not None and self.sim.now >= until_cycles:
                return
            if until is not None and until():
                return
            self.sim.dispatch_due()
            if self.cpu.irq_pending():
                self._handle_irq()
                continue
            if self.halted:
                if not self.sim.advance_to_next_event():
                    return
                continue
            if self.os.pending_irqs:
                self.os.handle_pending_irqs()
            kind, payload = self.os.run_one_action()
            if kind == "fault":
                raise GuestPanic(f"native fault: {payload}")
            if kind == "halt":
                self.halted = True
        raise GuestPanic("native run loop exceeded max_iterations")

    def _handle_irq(self) -> None:
        """IRQ vectors directly into uCOS (no distribution layer)."""
        cpu = self.cpu
        self.irq_count += 1
        cpu.take_exception("irq")
        irq = cpu.read32(_ICCIAR)
        if irq == SPURIOUS_IRQ:
            cpu.return_from_exception()
            return
        cpu.write32(_ICCEOIR, irq)
        if irq == IRQ_PRIVATE_TIMER:
            self.os.pending_irqs.append(GL.TICK_IRQ)
            self.machine.private_timer.program(self._tick_cycles)
        else:
            self.os.pending_irqs.append(irq)
        cpu.return_from_exception()

    # -- port primitives -------------------------------------------------------------

    def do_hypercall(self, tcb: Tcb, num: int, args: tuple):
        """Native 'hypercalls' are just function calls with full authority."""
        self.exec.code(GL.KERNEL_CODE + CODE_HC_WRAPPER, UC.hypercall_wrapper)
        result: object = HcStatus.SUCCESS
        hc = Hc(num)
        if hc is Hc.TIMER_SET:
            self._tick_cycles = args[0] or self._tick_cycles
            self.machine.private_timer.program(self._tick_cycles)
        elif hc is Hc.HWDATA_DEFINE:
            result = self.os.hwdata_pa
        elif hc in (Hc.IRQ_ENABLE, Hc.IRQ_DISABLE):
            irq = args[0]
            base = _ICDISER if hc is Hc.IRQ_ENABLE else _ICDICER
            self.cpu.write32(base + 4 * (irq // 32), 1 << (irq % 32))
        elif hc is Hc.CACHE_FLUSH_ALL:
            self.sim.clock.advance(self.machine.mem.caches.flush_all())
        elif hc is Hc.TLB_FLUSH_VA:
            self.machine.mem.mmu.tlb.flush_va(args[0] >> 12, 0)
        elif hc is Hc.TIMER_READ:
            result = self.machine.private_timer.remaining() or 0
        elif hc is Hc.DEV_ACCESS:
            from ...io.uart import UART_FIFO
            from ...machine import UART_BASE
            for word in args[2:4]:
                for shift in (0, 8, 16, 24):
                    ch = (word >> shift) & 0xFF
                    if ch:
                        self.cpu.write32(UART_BASE + UART_FIFO, ch)
        # Everything else is a no-op with SUCCESS (full authority).
        tcb.inbox, tcb.has_inbox = result, True
        return ("ran", None)

    def do_hw_request(self, tcb: Tcb, req):
        """The manager as a direct function call (Table III native row):
        trap/exec/resume collapse into one call, so the entry/exit spans
        have zero width by construction."""
        self.tracer.mark("hwreq_trap", cat="hwmgr", vm=0,
                         hc=int(Hc.HWTASK_REQUEST))
        with self.tracer.span("mgr_exec", cat="hwmgr", vm=0):
            r = self.allocator.allocate(AllocRequest(
                client_vm=0, task_id=req.task_id,
                iface_va=req.iface_va,
                data_pa=self.os.hwdata_pa + (req.data_va - GL.HWDATA_VA),
                data_size=GL.HWDATA_SIZE - (req.data_va - GL.HWDATA_VA),
                want_irq=req.want_irq))
        self.metrics.counter("hwmgr.requests", kind="request").inc()
        self.tracer.mark("hwreq_done", cat="hwmgr", vm=0, status=int(r.status))
        self.tracer.mark("hwreq_resumed", cat="hwmgr", vm=0)
        tcb.inbox, tcb.has_inbox = (r.status, r.prr_id, r.irq_id), True
        return ("ran", None)

    def do_hw_release(self, tcb: Tcb, req):
        r = self.allocator.release(0, req.task_id)
        tcb.inbox, tcb.has_inbox = (r.status, r.prr_id, None), True
        return ("ran", None)

    def mmio_read(self, va: int) -> int:
        return self.cpu.read32(va)

    def mmio_write(self, va: int, value: int) -> None:
        self.cpu.write32(va, value)

    def section_write(self, offset: int, data: bytes) -> None:
        # Uncached DMA staging, as in the paravirt port (AXI_HP is not
        # cache-coherent; Section IV-A discusses why ACP was rejected).
        pa = self.os.hwdata_pa + offset
        self.machine.mem.bus.dram.write_bytes(pa, data)
        self.cpu.stream_range(pa, len(data), write=True)

    def section_read(self, offset: int, n: int) -> bytes:
        pa = self.os.hwdata_pa + offset
        self.cpu.stream_range(pa, n)
        return self.machine.mem.bus.dram.read_bytes(pa, n)

    def vfp(self, instrs: int) -> None:
        self.cpu.vfp.execute()
        self.cpu.instr(instrs)

    def iface_addr(self, prr_id: int, requested_va: int) -> int:
        return self.machine.prr_reg_page_paddr(prr_id)


class _NativeManagerPort:
    """ManagerPort hooks for the native build: device work is real, all
    virtualization-specific steps are no-ops."""

    def __init__(self, system: NativeSystem) -> None:
        self.sys = system

    def code(self, off: int, n_instr: int) -> None:
        self.sys.exec.code(GL.KERNEL_CODE + MANAGER_FN_OFF + off, n_instr)

    def touch(self, addr: int, *, write: bool = False) -> None:
        if write:
            self.sys.cpu.store(addr)
        else:
            self.sys.cpu.load(addr)

    def ctl_write(self, prr_id: int, field: int, value: int) -> None:
        pa = self.sys.machine.prr_ctl_page_paddr() + prr_id * CTL_STRIDE + field
        self.sys.cpu.write32(pa, value)

    def reg_group_save(self, old_client_vm: int, prr) -> None:
        pass   # single client: the consistency protocol never triggers

    def map_iface(self, client_vm: int, prr_id: int, va: int) -> None:
        pass   # unified memory space: nothing to map

    def unmap_iface(self, client_vm: int, prr_id: int) -> None:
        pass

    def mark_consistent(self, client_vm: int) -> None:
        pass

    def register_irq(self, client_vm: int, irq_id: int) -> None:
        self.sys.cpu.write32(_ICDISER + 4 * (irq_id // 32), 1 << (irq_id % 32))

    def unregister_irq(self, client_vm: int, irq_id: int) -> None:
        self.sys.cpu.write32(_ICDICER + 4 * (irq_id // 32), 1 << (irq_id % 32))

    def pcap_available(self) -> bool:
        return not self.sys.machine.pcap.busy

    def pcap_launch(self, entry, prr_id: int, client_vm: int) -> None:
        from ...fpga.pcap import PCAP_LEN, PCAP_SRC, PCAP_TARGET
        from ...machine import PCAP_BASE
        cpu = self.sys.cpu
        cpu.write32(PCAP_BASE + PCAP_SRC, entry.bitstream.paddr)
        cpu.write32(PCAP_BASE + PCAP_LEN, entry.bitstream.size)
        cpu.write32(PCAP_BASE + PCAP_TARGET, prr_id)
        self.sys.machine.pcap.start_transfer(entry.bitstream, prr_id)

    def crashpoint(self, point: str) -> None:
        pass  # the native manager is a plain function — it cannot "crash"

    def pcap_cancel(self, prr_id: int) -> int | None:
        return self.sys.machine.pcap.cancel_transfer(prr_id)

    def iface_va_of(self, client_vm: int, prr_id: int) -> int | None:
        # Identity space: the register group is always "mapped" at its PA.
        return self.sys.machine.prr_reg_page_paddr(prr_id)

    def prr_mapped_at(self, client_vm: int, va: int) -> int | None:
        return None
