"""uC/OS-II ports: native (bare-metal baseline) and paravirtualized."""

from .native import NativeSystem
from .paravirt import ParavirtUcos

__all__ = ["NativeSystem", "ParavirtUcos"]
