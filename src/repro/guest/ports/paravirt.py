"""Paravirtualized uC/OS-II port — the ~200-LOC patch of Section V-A.

Everything uCOS does that would be privileged on bare metal goes through
this port: boot-time virtual-timer registration, IRQ-entry registration,
hardware-task-data-section declaration, and per-operation hypercalls.  The
OS core itself (:mod:`repro.guest.ucos`) is unmodified — mirroring how the
paper isolates the porting code in a patch package.
"""

from __future__ import annotations

from ...common.errors import GuestPanic
from ...kernel.exits import ExitFault, ExitHypercall, ExitIdle, ExitShutdown
from ...kernel.hypercalls import Hc
from .. import layout_guest as GL
from ..costs import CODE_API, CODE_HC_WRAPPER, UCOS_COSTS as UC
from ..exec import GuestExecutor
from ..ucos import Tcb, Ucos


class ParavirtUcos:
    """DomainRunner hosting one paravirtualized uCOS instance."""

    def __init__(self, os: Ucos, *, seed: int | None = None) -> None:
        self.os = os
        self.kernel = None
        self.pd = None
        self.exec: GuestExecutor | None = None
        self._awaiting: Tcb | None = None
        self._boot: list[tuple[int, tuple]] = []
        self._boot_await: int | None = None
        self.halted = False

    # -- DomainRunner ------------------------------------------------------

    def bind(self, kernel, pd) -> None:
        self.kernel = kernel
        self.pd = pd
        self.exec = GuestExecutor(kernel.cpu, addr_base=0,
                                  stream=f"guest-{self.os.name}")
        self.os.port = self
        tick_cycles = kernel.machine.params.cpu.hz // self.os.tick_hz
        # The porting patch's boot sequence (Section V-A bullet list).
        self._boot = [
            (int(Hc.VIRQ_REGISTER), (GL.KERNEL_CODE + 0x40, GL.TICK_IRQ)),
            (int(Hc.TIMER_SET), (tick_cycles,)),
            (int(Hc.HWDATA_DEFINE), (GL.HWDATA_VA, GL.HWDATA_SIZE)),
        ]

    def step(self, budget: int):
        kernel = self.kernel
        if self.halted:
            return ExitShutdown()
        if self._boot:
            num, args = self._boot.pop(0)
            self.exec.code(GL.KERNEL_CODE + CODE_HC_WRAPPER,
                           UC.hypercall_wrapper)
            self._boot_await = num
            return ExitHypercall(num=num, args=args)
        start = kernel.sim.now
        while kernel.sim.now - start < budget:
            if self.os.pending_irqs:
                self.os.handle_pending_irqs()
            kind, payload = self.os.run_one_action()
            if kind == "ran":
                if kernel.poll():
                    return None
            elif kind == "hypercall":
                tcb, num, args = payload
                self._awaiting = tcb
                return ExitHypercall(num=num, args=args)
            elif kind == "fault":
                return ExitFault(payload)
            elif kind == "halt":
                self.halted = True
                return ExitShutdown()
        return None

    def deliver_virq(self, irq_id: int) -> None:
        self.os.pending_irqs.append(irq_id)

    # -- VM lifecycle hooks (docs/RECOVERY.md §9) ----------------------------------

    def lifecycle_respawn(self) -> "ParavirtUcos":
        """A fresh runner for a resurrected incarnation of this VM: same
        task set, no execution state — the supervisor binds it to the
        rebuilt PD and the boot hypercall sequence replays."""
        return ParavirtUcos(self.os.lifecycle_fresh())

    def lifecycle_state(self) -> dict:
        """Checkpointable guest-software state beyond the memory image:
        the OS persistence scratchpad restartable tasks record progress in."""
        return {"persist": dict(self.os.persist)}

    def lifecycle_restore(self, state: dict) -> None:
        self.os.persist.clear()
        self.os.persist.update(state.get("persist", {}))

    def deliver_fault(self, fault) -> None:
        self.os.absorb_fault(fault)

    def complete_hypercall(self, exit_: ExitHypercall) -> None:
        if self._boot_await is not None:
            if self._boot_await == int(Hc.HWDATA_DEFINE):
                # Success returns the section's physical base (the guest
                # programs DMA addresses with it).
                if isinstance(exit_.result, int) and exit_.result > 0xFFF:
                    self.os.hwdata_pa = exit_.result
            self._boot_await = None
            return
        tcb = self._awaiting
        self._awaiting = None
        if tcb is None:
            raise GuestPanic(f"{self.os.name}: hypercall completion with no waiter")
        tcb.inbox, tcb.has_inbox = exit_.result, True

    # -- port primitives used by the OS core --------------------------------------

    @property
    def cpu(self):
        return self.kernel.cpu

    def do_hypercall(self, tcb: Tcb, num: int, args: tuple):
        self.exec.code(GL.KERNEL_CODE + CODE_HC_WRAPPER, UC.hypercall_wrapper)
        return ("hypercall", (tcb, num, args))

    def do_hw_request(self, tcb: Tcb, req):
        self.exec.code(GL.KERNEL_CODE + CODE_API, UC.api_glue)
        self.exec.code(GL.KERNEL_CODE + CODE_HC_WRAPPER, UC.hypercall_wrapper)
        args = (req.task_id, req.iface_va, req.data_va, int(req.want_irq))
        return ("hypercall", (tcb, int(Hc.HWTASK_REQUEST), args))

    def do_hw_release(self, tcb: Tcb, req):
        self.exec.code(GL.KERNEL_CODE + CODE_HC_WRAPPER, UC.hypercall_wrapper)
        return ("hypercall", (tcb, int(Hc.HWTASK_RELEASE), (req.task_id,)))

    def mmio_read(self, va: int) -> int:
        # Direct access through the guest's own mapping; faults (reclaimed
        # page) escape to the hypervisor as a data abort (Section IV-E).
        return self.cpu.read32(va)

    def mmio_write(self, va: int, value: int) -> None:
        self.cpu.write32(va, value)

    def section_write(self, offset: int, data: bytes) -> None:
        # The data section is DMA staging memory on the non-coherent
        # AXI_HP path: the guest treats it as uncached (Section IV-B).
        pa = self.os.hwdata_pa + offset
        self.kernel.mem.bus.dram.write_bytes(pa, data)
        self.cpu.stream_range(GL.HWDATA_VA + offset, len(data), write=True)

    def section_read(self, offset: int, n: int) -> bytes:
        pa = self.os.hwdata_pa + offset
        self.cpu.stream_range(GL.HWDATA_VA + offset, n)
        return self.kernel.mem.bus.dram.read_bytes(pa, n)

    def vfp(self, instrs: int) -> None:
        self.cpu.vfp.execute()       # traps (UND) while disabled
        self.cpu.instr(instrs)

    def iface_addr(self, prr_id: int, requested_va: int) -> int:
        return requested_va
