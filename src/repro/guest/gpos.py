"""A small general-purpose OS personality (the paper's 'high-level generic
OS' of the mixed-criticality motivation).

Reuses the entire guest infrastructure — actions, executor, ports, the
Mini-NOVA runner — but replaces uC/OS-II's strict-priority scheduling with
fair time-sharing: ready processes round-robin on a tick-based time slice,
so a compute-bound process cannot starve the others.  This is what rides
in the low-priority VMs next to an RTOS VM (see
``examples/mixed_criticality.py`` and the paper's introduction).
"""

from __future__ import annotations

from typing import Callable, Generator

from ..common.errors import GuestPanic
from .ucos import IDLE_PRIO, TaskState, Tcb, Ucos


class Gpos(Ucos):
    """Fair time-sharing OS on the uC/OS guest substrate.

    Priorities still exist internally (the TCB store is keyed by them) but
    do not drive dispatch; they are assigned automatically in creation
    order.  Each process runs for ``slice_ticks`` OS ticks before the
    scheduler rotates to the next ready process.
    """

    def __init__(self, name: str, *, tick_hz: int = 100,
                 slice_ticks: int = 2) -> None:
        super().__init__(name, tick_hz=tick_hz)
        self.slice_ticks = slice_ticks
        self._rr: list[Tcb] = []
        self._slice_left = slice_ticks
        self.rotations = 0

    # -- process management ---------------------------------------------------

    def create_process(self, name: str,
                       fn: Callable[["Ucos"], Generator]) -> Tcb:
        """Spawn a process; the internal priority slot is auto-assigned."""
        for prio in range(IDLE_PRIO):
            if prio not in self.tasks:
                tcb = self.create_task(name, prio, fn)
                self._rr.append(tcb)
                return tcb
        raise GuestPanic("process table full")

    # -- fair dispatch ----------------------------------------------------------

    def highest_ready(self) -> Tcb | None:
        """Round-robin among READY processes; idle only when none are."""
        if not self._rr:
            return self.tasks.get(IDLE_PRIO)
        for _ in range(len(self._rr)):
            tcb = self._rr[0]
            if tcb.state is TaskState.DONE:
                self._rr.pop(0)
                continue
            if tcb.state is TaskState.READY:
                return tcb
            self._rr.append(self._rr.pop(0))     # blocked: try the next
        return self.tasks.get(IDLE_PRIO)

    def _on_tick(self) -> None:
        super()._on_tick()
        self._slice_left -= 1
        if self._slice_left <= 0:
            self._slice_left = self.slice_ticks
            if len(self._rr) > 1:
                self._rr.append(self._rr.pop(0))
                self.rotations += 1
