"""Guest-visible address layout (offsets from the port's ``addr_base``).

Under the paravirt port these are guest virtual addresses (addr_base = 0);
under the native port they are offsets into the OS's physical image
(addr_base = the image's base), which keeps the two builds byte-for-byte
comparable — the paper's Table III hinges on that symmetry.
"""

from __future__ import annotations

from ..kernel.layout import (
    GUEST_HWDATA_SIZE,
    GUEST_HWDATA_VA,
    GUEST_KERNEL_CODE,
    GUEST_KERNEL_DATA,
    GUEST_PRR_IFACE_VA,
    GUEST_USER_BASE,
    GUEST_USER_SIZE,
)

KERNEL_CODE = GUEST_KERNEL_CODE
KERNEL_DATA = GUEST_KERNEL_DATA
USER_BASE = GUEST_USER_BASE
USER_SIZE = GUEST_USER_SIZE
HWDATA_VA = GUEST_HWDATA_VA
HWDATA_SIZE = GUEST_HWDATA_SIZE
PRR_IFACE_VA = GUEST_PRR_IFACE_VA

#: Virtual IRQ number of the guest's timer tick (virtual timer, Table I).
TICK_IRQ = 29
