"""Guest OS layer: the uC/OS-II-style RTOS, its two ports, task actions,
the guest executor, and the hardware-task client API."""

from . import actions, api, layout_guest
from .costs import UCOS_COSTS, UcosCosts
from .exec import GuestExecutor
from .gpos import Gpos
from .ports.native import NativeSystem
from .ports.paravirt import ParavirtUcos
from .ucos import IDLE_PRIO, N_PRIOS, OsStats, Semaphore, TaskState, Tcb, Ucos

__all__ = [
    "actions", "api", "layout_guest", "UCOS_COSTS", "UcosCosts",
    "GuestExecutor", "Gpos", "NativeSystem", "ParavirtUcos", "IDLE_PRIO", "N_PRIOS",
    "OsStats", "Semaphore", "TaskState", "Tcb", "Ucos",
]
