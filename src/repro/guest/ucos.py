"""uC/OS-II-style real-time kernel core (the guest OS of Section V-A).

Faithful to the uC/OS-II programming model where the paper depends on it:
64 strict priority levels with one task per level, a ready-list scheduler,
semaphores with priority-ordered wakeup, OSTimeDly tick-based delays, and
ISR enter/exit paths.  Application tasks are Python generators yielding
:mod:`repro.guest.actions` records.

The same core runs under two *ports* (as the paper's uCOS runs natively
and paravirtualized): the port supplies execution primitives — how a
hypercall/sensitive op is performed, where code lives, how devices are
reached — while all OS semantics stay here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Generator

from ..common.errors import ArchFault, GuestPanic
from . import layout_guest as GL
from .actions import (
    BindIrqSem,
    Compute,
    Delay,
    FAULTED,
    Finish,
    HwRelease,
    HwRequest,
    Hypercall,
    MboxPend,
    MboxPost,
    MmioRead,
    MmioWrite,
    QueuePend,
    QueuePost,
    SectionRead,
    SectionWrite,
    SemPend,
    SemPost,
    VfpCompute,
)
from .costs import (
    CODE_API,
    CODE_CTXSW,
    CODE_FAULT,
    CODE_IDLE,
    CODE_ISR,
    CODE_SCHED,
    CODE_SEM,
    CODE_TICK,
    UCOS_COSTS as UC,
)

#: uC/OS-II convention: lower number = higher priority; 63 = idle.
N_PRIOS = 64
IDLE_PRIO = N_PRIOS - 1


class TaskState(Enum):
    READY = "ready"
    DELAYED = "delayed"
    PENDING = "pending"       # blocked on a semaphore
    DONE = "done"


@dataclass(eq=False)
class Semaphore:
    name: str
    count: int = 0
    waiters: list["Tcb"] = field(default_factory=list)
    posts: int = 0
    pends: int = 0


@dataclass(eq=False)
class OsMailbox:
    """OSMbox: a single-slot message exchange."""

    name: str
    msg: object = None
    full: bool = False
    waiters: list["Tcb"] = field(default_factory=list)
    posts: int = 0
    pends: int = 0


@dataclass(eq=False)
class OsQueue:
    """OSQ: a bounded FIFO message queue."""

    name: str
    capacity: int = 8
    msgs: list = field(default_factory=list)
    waiters: list["Tcb"] = field(default_factory=list)
    posts: int = 0
    pends: int = 0
    overruns: int = 0


@dataclass(eq=False)
class Tcb:
    prio: int
    name: str
    fn: Callable[["Ucos"], Generator]
    gen: Generator | None = None
    state: TaskState = TaskState.READY
    delay: int = 0
    #: Value to send into the generator at next resume (None = plain next).
    inbox: Any = None
    has_inbox: bool = False
    #: Action to re-execute after a transparent trap (VFP lazy switch).
    retry_action: Any = None
    pending_sem: Semaphore | None = None
    switches: int = 0
    actions: int = 0


@dataclass
class OsStats:
    ticks: int = 0
    ctx_switches: int = 0
    isr_count: int = 0
    idle_chunks: int = 0
    faults_handled: int = 0


class Ucos:
    """One guest OS instance."""

    def __init__(self, name: str, *, tick_hz: int = 1000) -> None:
        self.name = name
        self.tick_hz = tick_hz
        self.tasks: dict[int, Tcb] = {}
        self.sems: list[Semaphore] = []
        self.stats = OsStats()
        self.current: Tcb | None = None
        #: vIRQ id -> semaphore posted from the ISR (BindIrqSem).
        self.irq_bindings: dict[int, Semaphore] = {}
        #: IRQs delivered by the hypervisor/hardware, pending OS handling.
        self.pending_irqs: list[int] = []
        #: Filled by the port at boot: physical base of the hw data section.
        self.hwdata_pa: int = 0
        #: Application-visible scratchpad a restartable task keeps its
        #: progress markers in; captured into VM checkpoints as runner
        #: state and reinstated on restore (docs/RECOVERY.md §9).  A
        #: *fresh* restart gets an empty one — progress only survives
        #: through a checkpoint.
        self.persist: dict = {}
        self.port = None   # bound by the port/runner
        self._create_idle()

    # -- configuration ------------------------------------------------------

    def create_task(self, name: str, prio: int,
                    fn: Callable[["Ucos"], Generator]) -> Tcb:
        if not 0 <= prio < N_PRIOS:
            raise GuestPanic(f"priority {prio} out of range")
        if prio in self.tasks:
            raise GuestPanic(f"priority {prio} already taken (uC/OS-II rule)")
        tcb = Tcb(prio=prio, name=name, fn=fn)
        self.tasks[prio] = tcb
        return tcb

    def create_semaphore(self, name: str, count: int = 0) -> Semaphore:
        sem = Semaphore(name=name, count=count)
        self.sems.append(sem)
        return sem

    def create_mailbox(self, name: str) -> OsMailbox:
        return OsMailbox(name=name)

    def create_queue(self, name: str, capacity: int = 8) -> OsQueue:
        return OsQueue(name=name, capacity=capacity)

    def lifecycle_fresh(self) -> "Ucos":
        """A factory-fresh copy of this OS image for VM resurrection:
        same task set (re-created from their generator factories, so no
        execution state carries over), empty ``persist``.  Semaphores and
        IRQ bindings are re-created by the tasks themselves as they boot."""
        fresh = Ucos(self.name, tick_hz=self.tick_hz)
        for prio in sorted(self.tasks):
            tcb = self.tasks[prio]
            if prio != IDLE_PRIO:
                fresh.create_task(tcb.name, prio, tcb.fn)
        return fresh

    def _create_idle(self) -> None:
        def idle_fn(os: "Ucos") -> Generator:
            while True:
                yield Compute(UC.idle_loop, 4,
                              ((GL.KERNEL_DATA, 4096),), 0.0)
        self.create_task("idle", IDLE_PRIO, idle_fn)

    # -- scheduling core ----------------------------------------------------------

    def highest_ready(self) -> Tcb | None:
        for prio in sorted(self.tasks):
            if self.tasks[prio].state is TaskState.READY:
                return self.tasks[prio]
        return None

    def live_task_count(self) -> int:
        return sum(1 for t in self.tasks.values()
                   if t.state is not TaskState.DONE and t.prio != IDLE_PRIO)

    # -- tick & ISR paths (timed via the port's executor) ------------------------

    def handle_pending_irqs(self) -> None:
        """Run the OS-side ISR for every queued vIRQ."""
        ex = self.port.exec
        while self.pending_irqs:
            irq = self.pending_irqs.pop(0)
            self.stats.isr_count += 1
            ex.code(GL.KERNEL_CODE + CODE_ISR, UC.isr_entry)
            if irq == GL.TICK_IRQ:
                self._on_tick()
            else:
                sem = self.irq_bindings.get(irq)
                if sem is not None:
                    self._sem_post_isr(sem)
            ex.code(GL.KERNEL_CODE + CODE_ISR + 0x100, UC.isr_exit)

    def _on_tick(self) -> None:
        ex = self.port.exec
        self.stats.ticks += 1
        ex.code(GL.KERNEL_CODE + CODE_TICK, UC.tick_handler)
        for tcb in self.tasks.values():
            # OSTimeTick walks every TCB (timed via the data touch below).
            ex.cpu.load(ex.addr_base + GL.KERNEL_DATA + 0x100 + tcb.prio * 16)
            if tcb.state is TaskState.DELAYED:
                tcb.delay -= 1
                if tcb.delay <= 0:
                    tcb.state = TaskState.READY
            elif tcb.state is TaskState.PENDING and tcb.delay > 0:
                tcb.delay -= 1
                if tcb.delay <= 0:       # semaphore timeout
                    self._sem_unwait(tcb, timeout=True)

    def _sem_post_isr(self, sem: Semaphore) -> None:
        ex = self.port.exec
        ex.code(GL.KERNEL_CODE + CODE_SEM, UC.sem_post)
        self._sem_post(sem)

    # -- semaphore internals ------------------------------------------------------

    def _sem_post(self, sem: Semaphore) -> None:
        sem.posts += 1
        if sem.waiters:
            sem.waiters.sort(key=lambda t: t.prio)
            tcb = sem.waiters.pop(0)
            tcb.pending_sem = None
            tcb.state = TaskState.READY
            tcb.inbox = True
            tcb.has_inbox = True
        else:
            sem.count += 1

    def _sem_unwait(self, tcb: Tcb, *, timeout: bool) -> None:
        sem = tcb.pending_sem
        if sem is not None and tcb in sem.waiters:
            sem.waiters.remove(tcb)
        tcb.pending_sem = None
        tcb.state = TaskState.READY
        tcb.inbox = not timeout
        tcb.has_inbox = True

    # -- the dispatcher ------------------------------------------------------------

    def run_one_action(self) -> tuple[str, Any]:
        """Dispatch the highest-priority ready task for one action.

        Returns one of:
          ("ran", None)            — action fully executed in-guest
          ("hypercall", (tcb, num, args)) — port wants a VM exit
          ("fault", exc)           — architectural fault escaped to the host
          ("halt", None)           — every application task finished
        """
        ex = self.port.exec
        tcb = self.highest_ready()
        if tcb is None:            # cannot happen: idle is always ready
            return ("halt", None)
        if self.live_task_count() == 0:
            return ("halt", None)

        if tcb is not self.current:
            ex.code(GL.KERNEL_CODE + CODE_SCHED, UC.sched_pick)
            ex.code(GL.KERNEL_CODE + CODE_CTXSW, UC.ctx_switch)
            self.stats.ctx_switches += 1
            tcb.switches += 1
            self.current = tcb

        if tcb.gen is None:
            tcb.gen = tcb.fn(self)

        # Resume the task: retry a trapped action or advance the generator.
        action = tcb.retry_action
        tcb.retry_action = None
        if action is None:
            try:
                if tcb.has_inbox:
                    inbox, tcb.inbox, tcb.has_inbox = tcb.inbox, None, False
                    action = tcb.gen.send(inbox)
                else:
                    action = next(tcb.gen)
            except StopIteration:
                tcb.state = TaskState.DONE
                return ("ran", None)
        tcb.actions += 1
        return self._execute(tcb, action)

    def _execute(self, tcb: Tcb, action: Any) -> tuple[str, Any]:
        ex = self.port.exec
        try:
            return self._execute_inner(tcb, action)
        except ArchFault as fault:
            tcb.retry_action = action
            return ("fault", fault)

    def _execute_inner(self, tcb: Tcb, action: Any) -> tuple[str, Any]:
        ex = self.port.exec
        port = self.port

        if isinstance(action, Compute):
            ex.bulk(action.instrs, action.mem_accesses, action.regions,
                    action.write_frac)
        elif isinstance(action, VfpCompute):
            port.vfp(action.instrs)     # may raise -> lazy-switch trap
        elif isinstance(action, Delay):
            ex.code(GL.KERNEL_CODE + CODE_SCHED, UC.sched_pick)
            tcb.state = TaskState.DELAYED
            tcb.delay = max(1, action.ticks)
        elif isinstance(action, SemPend):
            ex.code(GL.KERNEL_CODE + CODE_SEM, UC.sem_pend)
            sem = action.sem
            sem.pends += 1
            if sem.count > 0:
                sem.count -= 1
                tcb.inbox, tcb.has_inbox = True, True
            else:
                tcb.state = TaskState.PENDING
                tcb.pending_sem = sem
                tcb.delay = action.timeout_ticks
                sem.waiters.append(tcb)
        elif isinstance(action, SemPost):
            ex.code(GL.KERNEL_CODE + CODE_SEM, UC.sem_post)
            self._sem_post(action.sem)
        elif isinstance(action, MboxPend):
            ex.code(GL.KERNEL_CODE + CODE_SEM, UC.sem_pend)
            mbox = action.mbox
            mbox.pends += 1
            if mbox.full:
                msg, mbox.msg, mbox.full = mbox.msg, None, False
                tcb.inbox, tcb.has_inbox = msg, True
            else:
                tcb.state = TaskState.PENDING
                tcb.pending_sem = mbox
                tcb.delay = action.timeout_ticks
                mbox.waiters.append(tcb)
        elif isinstance(action, MboxPost):
            ex.code(GL.KERNEL_CODE + CODE_SEM, UC.sem_post)
            mbox = action.mbox
            mbox.posts += 1
            if mbox.waiters:
                mbox.waiters.sort(key=lambda t: t.prio)
                waiter = mbox.waiters.pop(0)
                waiter.pending_sem = None
                waiter.state = TaskState.READY
                waiter.inbox, waiter.has_inbox = action.msg, True
                tcb.inbox, tcb.has_inbox = True, True
            elif not mbox.full:
                mbox.msg, mbox.full = action.msg, True
                tcb.inbox, tcb.has_inbox = True, True
            else:
                tcb.inbox, tcb.has_inbox = False, True    # OS_MBOX_FULL
        elif isinstance(action, QueuePend):
            ex.code(GL.KERNEL_CODE + CODE_SEM, UC.sem_pend)
            q = action.queue
            q.pends += 1
            if q.msgs:
                tcb.inbox, tcb.has_inbox = q.msgs.pop(0), True
            else:
                tcb.state = TaskState.PENDING
                tcb.pending_sem = q
                tcb.delay = action.timeout_ticks
                q.waiters.append(tcb)
        elif isinstance(action, QueuePost):
            ex.code(GL.KERNEL_CODE + CODE_SEM, UC.sem_post)
            q = action.queue
            q.posts += 1
            if q.waiters:
                q.waiters.sort(key=lambda t: t.prio)
                waiter = q.waiters.pop(0)
                waiter.pending_sem = None
                waiter.state = TaskState.READY
                waiter.inbox, waiter.has_inbox = action.msg, True
                tcb.inbox, tcb.has_inbox = True, True
            elif len(q.msgs) < q.capacity:
                q.msgs.append(action.msg)
                tcb.inbox, tcb.has_inbox = True, True
            else:
                q.overruns += 1
                tcb.inbox, tcb.has_inbox = False, True    # OS_Q_FULL
        elif isinstance(action, BindIrqSem):
            ex.code(GL.KERNEL_CODE + CODE_API, UC.api_glue)
            self.irq_bindings[action.irq_id] = action.sem
            tcb.inbox, tcb.has_inbox = True, True
        elif isinstance(action, Hypercall):
            return port.do_hypercall(tcb, action.num, action.args)
        elif isinstance(action, HwRequest):
            return port.do_hw_request(tcb, action)
        elif isinstance(action, HwRelease):
            return port.do_hw_release(tcb, action)
        elif isinstance(action, MmioRead):
            tcb.inbox, tcb.has_inbox = port.mmio_read(action.va), True
        elif isinstance(action, MmioWrite):
            port.mmio_write(action.va, action.value)
        elif isinstance(action, SectionWrite):
            port.section_write(action.offset, action.data)
        elif isinstance(action, SectionRead):
            tcb.inbox, tcb.has_inbox = port.section_read(action.offset,
                                                         action.n), True
        elif isinstance(action, Finish):
            tcb.state = TaskState.DONE
        else:
            raise GuestPanic(f"unknown action {action!r}")
        return ("ran", None)

    # -- host-side fault delivery (paper: guest page-fault service) ---------------

    def absorb_fault(self, fault: ArchFault) -> None:
        """The hypervisor forwarded a fault: run the guest handler and give
        the current task a FAULTED result instead of retrying."""
        ex = self.port.exec
        ex.code(GL.KERNEL_CODE + CODE_FAULT, UC.fault_handler)
        self.stats.faults_handled += 1
        tcb = self.current
        if tcb is not None:
            tcb.retry_action = None
            tcb.inbox, tcb.has_inbox = FAULTED, True
