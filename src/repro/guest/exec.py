"""Guest execution helper: timed code blocks and sampled bulk memory traffic.

Workload tasks execute millions of instructions; tracing every access is
prohibitive, so :meth:`GuestExecutor.bulk` drives a 1/``bulk_sample``
subsample of the task's memory stream through the *real* MMU/TLB/cache
models — polluting them exactly like a real working set — and extrapolates
the stream's total memory latency from the sampled mean.
"""

from __future__ import annotations

import numpy as np

from ..common.rng import make_rng
from ..cpu.core import Cpu


class GuestExecutor:
    """Bound to one guest (its address base and RNG stream)."""

    def __init__(self, cpu: Cpu, *, addr_base: int = 0, seed: int | None = None,
                 stream: str = "guest") -> None:
        self.cpu = cpu
        self.addr_base = addr_base
        self.rng = make_rng(seed, stream=stream)
        self.sample = cpu.params.bulk_sample
        self._line = cpu.params.l1d.line
        # Per-regions-tuple precomputed (bases, sizes, cdf): region tuples
        # are tiny and repeat for every chunk of the same task, and
        # rebuilding them cost more than the draws they weight.
        self._region_cache: dict[tuple, tuple] = {}

    def code(self, va: int, n_instr: int) -> None:
        """Timed straight-line code at a guest address."""
        self.cpu.code(self.addr_base + va, n_instr)

    def bulk(self, instrs: int, mem_accesses: int,
             regions: tuple[tuple[int, int], ...],
             write_frac: float = 0.3) -> None:
        """One workload chunk: issue cost + sampled memory stream.

        The sampled addresses mix sequential runs (2/3) with uniform
        accesses (1/3) across the regions, approximating the locality of
        DSP inner loops over their buffers.
        """
        cpu = self.cpu
        cpu.instr(instrs)
        if mem_accesses <= 0 or not regions:
            return
        n_sample = max(1, mem_accesses // self.sample)
        vaddrs = self._gen_addrs(n_sample, regions)
        writes = self.rng.random(n_sample) < write_frac
        extra = cpu.mem.sample_block(
            vaddrs, write_mask=writes, privileged=cpu.privileged,
            scale=max(1, mem_accesses // n_sample))
        # sample_block returns extrapolated latency for the whole stream.
        cpu._charge(extra)

    def _gen_addrs(self, n: int, regions: tuple[tuple[int, int], ...]) -> np.ndarray:
        rng = self.rng
        # Pick a region per sample, weighted by size.  The weighted pick
        # inlines numpy's own replace=True implementation of
        # ``rng.choice(k, size=n, p=weights)`` — one uniform draw searched
        # against the weight CDF — so it consumes the identical random
        # stream while the CDF is computed once per regions tuple.
        cached = self._region_cache.get(regions)
        if cached is None:
            bases = np.array([self.addr_base + b for b, _ in regions],
                             dtype=np.int64)
            sizes = np.array([s for _, s in regions], dtype=np.int64)
            cdf = (sizes / sizes.sum()).cumsum()
            cdf /= cdf[-1]
            cached = (bases, sizes, cdf)
            self._region_cache[regions] = cached
        bases, sizes, cdf = cached
        region_idx = cdf.searchsorted(rng.random(n), side="right")
        offsets = (rng.random(n) * (sizes[region_idx] - self._line)).astype(np.int64)
        # Sequential bias: walk 2 of every 3 samples forward a line.
        seq = rng.integers(0, 3, size=n) != 0
        offsets = np.where(seq, (offsets // self._line) * self._line,
                           offsets & ~np.int64(3))
        return bases[region_idx] + offsets
