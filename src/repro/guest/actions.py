"""Actions a guest task can yield to its OS.

Guest application tasks are Python generators: they ``yield`` one of these
records and receive the action's result at the next resume.  The uC/OS-II
core interprets OS-level actions (delays, semaphores) itself and hands the
rest to its *port* — which is where native and paravirtualized execution
diverge (direct operation vs. hypercall / trap).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Compute:
    """Burn ``instrs`` instructions with ``mem_accesses`` loads/stores over
    the given working-set regions (guest VAs)."""

    instrs: int
    mem_accesses: int = 0
    regions: tuple[tuple[int, int], ...] = ()    # (base, size) pairs
    write_frac: float = 0.3


@dataclass
class VfpCompute:
    """A block using the VFP — triggers the lazy-switch trap when the unit
    is disabled (Table I)."""

    instrs: int


@dataclass
class Delay:
    """OSTimeDly: sleep for N OS ticks."""

    ticks: int


@dataclass
class SemPend:
    sem: "object"
    timeout_ticks: int = 0     # 0 = wait forever


@dataclass
class SemPost:
    sem: "object"


@dataclass
class MboxPend:
    """OSMboxPend: wait for a message in a single-slot mailbox."""

    mbox: "object"
    timeout_ticks: int = 0


@dataclass
class MboxPost:
    """OSMboxPost: deposit a message (fails if the slot is full)."""

    mbox: "object"
    msg: object = None


@dataclass
class QueuePend:
    """OSQPend: wait for a message in a FIFO queue."""

    queue: "object"
    timeout_ticks: int = 0


@dataclass
class QueuePost:
    """OSQPost: append a message (fails when the queue is full)."""

    queue: "object"
    msg: object = None


@dataclass
class Hypercall:
    """Paravirt: SVC into Mini-NOVA; native: the port emulates directly."""

    num: int
    args: tuple = ()


@dataclass
class MmioRead:
    """Read a device register through the guest's own mapping (e.g. the
    PRR interface page).  May fault if the page was reclaimed."""

    va: int


@dataclass
class MmioWrite:
    va: int
    value: int


@dataclass
class SectionWrite:
    """Copy bytes into the hardware-task data section at ``offset``."""

    offset: int
    data: bytes


@dataclass
class SectionRead:
    """Read ``n`` bytes from the data section at ``offset``."""

    offset: int
    n: int


@dataclass
class HwRequest:
    """Ask the Hardware Task Manager for a task (Section IV-E hypercall:
    task ID, interface VA, data-section VA — plus the IRQ flag)."""

    task_id: int
    iface_va: int
    data_va: int
    want_irq: bool = False


@dataclass
class HwRelease:
    task_id: int = 0


@dataclass
class BindIrqSem:
    """Associate a vIRQ with a semaphore: the OS ISR posts it (Fig. 6)."""

    irq_id: int
    sem: "object"


@dataclass
class Finish:
    """Task completed its workload (leaves the ready list for good)."""

    code: int = 0


#: Sentinel result a task receives when its action faulted (e.g. MMIO on a
#: reclaimed interface page) and the guest OS fault handler absorbed it.
FAULTED = "faulted"
