"""Guest-side hardware-task API (Section V-A: "functionalities supporting
hardware task access were added as APIs").

These are sub-generators used with ``yield from`` inside application
tasks.  They wrap the full client protocol: the 3-argument request
hypercall, reconfiguration wait (poll or PCAP IRQ), data-section staging,
PRR register programming, completion wait (status poll or PL IRQ through
the vGIC), and result readback — including recovery when the task's PRR
was reclaimed by another VM mid-use (FAULTED / state-flag protocol).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator

from ..fpga.controller import TASKID_RECONFIG_FAILED, task_id_of
from ..fpga.prr import (
    CTRL_START,
    PrrStatus,
    REG_CTRL,
    REG_DST,
    REG_IRQ_EN,
    REG_LEN,
    REG_OUTLEN,
    REG_SRC,
    REG_STATUS,
    REG_TASKID,
)
from ..kernel.hypercalls import HcStatus
from . import layout_guest as GL
from .actions import (
    BindIrqSem,
    Delay,
    FAULTED,
    HwRequest,
    MmioRead,
    MmioWrite,
    SectionRead,
    SectionWrite,
    SemPend,
)
from .ucos import Semaphore, Ucos

#: Sentinel returned by :func:`_wait_taskid` when the PRR reports that the
#: reconfiguration was aborted (PCAP retries exhausted, docs/FAULTS.md).
RECONFIG_FAILED = object()

#: Offset of the input staging area in the data section (the first 64 bytes
#: hold the consistency record, Section IV-C).
DATA_IN_OFF = 64
#: Output staging offset: input can grow to 64 KB (fft8192 frames).
DATA_OUT_OFF = DATA_IN_OFF + 128 * 1024


@dataclass
class HwTaskHandle:
    """What a successful run returns alongside the output bytes."""

    status: HcStatus
    prr_id: int | None = None
    irq_id: int | None = None
    reconfigured: bool = False
    retries: int = 0
    output: bytes = b""


def hw_task_run(os: Ucos, task_table_id: int, task_name: str,
                data_in: bytes, *, iface_va: int = GL.PRR_IFACE_VA,
                sem: Semaphore | None = None,
                max_retries: int = 8) -> Generator:
    """Request + execute one hardware task over ``data_in``.

    Uses the PL IRQ completion path when ``sem`` is given, otherwise polls
    the status register with 1-tick backoff.  Returns a
    :class:`HwTaskHandle`; ``status`` is BUSY when no PRR (or the PCAP)
    was available after ``max_retries`` attempts.
    """
    expected_id = task_id_of(task_name)
    want_irq = sem is not None
    handle = HwTaskHandle(status=HcStatus.BUSY)
    _note_fresh_request(os)

    for attempt in range(max_retries):
        res = yield HwRequest(task_id=task_table_id, iface_va=iface_va,
                              data_va=GL.HWDATA_VA, want_irq=want_irq)
        status, prr_id, irq_id = res
        if status in (HcStatus.BUSY, HcStatus.MANAGER_RESTARTING):
            # Transient: no PRR/PCAP available, or the manager service is
            # being restarted (docs/RECOVERY.md) — back off and retry,
            # unless the guest retry budget is spent (retries may never
            # exceed their fixed fraction of fresh traffic; the denied
            # request surfaces as BUSY and the adaptive APIs degrade to
            # software instead of storming the manager).
            if not _take_retry_budget(os):
                handle.status = HcStatus.BUSY
                return handle
            handle.retries += 1
            yield Delay(1)
            continue
        if status not in (HcStatus.SUCCESS, HcStatus.RECONFIG):
            handle.status = status
            return handle
        handle.prr_id, handle.irq_id = prr_id, irq_id
        handle.reconfigured = status == HcStatus.RECONFIG
        iface = os.port.iface_addr(prr_id, iface_va)

        # Wait out a PCAP reconfiguration (stage 6: poll or PCAP IRQ —
        # polling REG_TASKID doubles as the completion signal).
        ok = yield from _wait_taskid(iface, expected_id)
        if ok is FAULTED:
            handle.retries += 1
            continue
        if ok is RECONFIG_FAILED:
            # PCAP exhausted its retries: VM-visible error, not a hang.
            handle.status = HcStatus.ERR_STATE
            return handle
        if not ok:
            handle.retries += 1
            yield Delay(1)
            continue

        result = yield from _program_and_wait(
            os, iface, data_in, sem=sem, irq_id=irq_id)
        if result is FAULTED:
            # PRR reclaimed mid-use: the state flag in our data section
            # tells us the interface is gone; re-request.
            handle.retries += 1
            continue
        status_reg, output = result
        if status_reg == int(PrrStatus.DONE):
            handle.status = HcStatus.SUCCESS
            handle.output = output
            return handle
        handle.status = HcStatus.ERR_STATE
        return handle

    handle.status = HcStatus.BUSY
    return handle


def _wait_taskid(iface: int, expected_id: int, *, max_ticks: int = 4000):
    """Poll REG_TASKID until the target bitstream is resident.

    Returns :data:`RECONFIG_FAILED` when the register reads all-ones —
    the controller's way of reporting an aborted reconfiguration."""
    for _ in range(max_ticks):
        v = yield MmioRead(iface + REG_TASKID)
        if v is FAULTED:
            return FAULTED
        if v == expected_id:
            return True
        if v == TASKID_RECONFIG_FAILED:
            return RECONFIG_FAILED
        yield Delay(1)
    return False


def _program_and_wait(os: Ucos, iface: int, data_in: bytes, *,
                      sem: Semaphore | None, irq_id: int | None,
                      max_ticks: int = 4000):
    """Stage data, program the register group, start, await completion."""
    yield SectionWrite(DATA_IN_OFF, data_in)
    src_pa = os.hwdata_pa + DATA_IN_OFF
    dst_pa = os.hwdata_pa + DATA_OUT_OFF

    r = yield MmioWrite(iface + REG_SRC, src_pa)
    if r is FAULTED:
        return FAULTED
    yield MmioWrite(iface + REG_LEN, len(data_in))
    yield MmioWrite(iface + REG_DST, dst_pa)
    use_irq = sem is not None and irq_id is not None
    yield MmioWrite(iface + REG_IRQ_EN, int(use_irq))
    if use_irq:
        yield BindIrqSem(irq_id, sem)
    r = yield MmioWrite(iface + REG_CTRL, CTRL_START)
    if r is FAULTED:
        return FAULTED

    if use_irq:
        status = int(PrrStatus.BUSY)
        for _ in range(4):
            # Bounded re-pend loop: a *spurious* DONE IRQ (fault injection,
            # or a shared line) wakes us while the task is still BUSY — a
            # correct client re-waits instead of reading garbage.
            yield SemPend(sem, timeout_ticks=max_ticks)
            status = yield MmioRead(iface + REG_STATUS)
            if status is FAULTED:
                return FAULTED
            if status != int(PrrStatus.BUSY):
                break
            _note_client_rewait(os)
    else:
        status = int(PrrStatus.BUSY)
        for _ in range(max_ticks):
            status = yield MmioRead(iface + REG_STATUS)
            if status is FAULTED:
                return FAULTED
            if status != int(PrrStatus.BUSY):
                break
            yield Delay(1)

    if status != int(PrrStatus.DONE):
        return (status, b"")
    outlen = yield MmioRead(iface + REG_OUTLEN)
    if outlen is FAULTED:
        return FAULTED
    output = yield SectionRead(DATA_OUT_OFF, outlen)
    return (status, output)


def console_print(os: Ucos, text: str) -> Generator:
    """Print through the kernel-supervised UART (DEV_ACCESS hypercall).

    Characters are packed 8 per hypercall (two argument words); a trailing
    newline is added, closing the line in the kernel's per-VM transcript.
    """
    from ..kernel.hypercalls import Hc
    from .actions import Hypercall

    data = (text + "\n").encode("latin-1").replace(b"\x00", b"?")
    for i in range(0, len(data), 8):
        chunk = data[i:i + 8].ljust(8, b"\x00")
        w0 = int.from_bytes(chunk[:4], "little")
        w1 = int.from_bytes(chunk[4:], "little")
        yield Hypercall(int(Hc.DEV_ACCESS), (0, 0, w0, w1))


def hw_data_flag(os: Ucos) -> Generator:
    """Read the consistency state flag of the VM's data section (0 =
    consistent, 1 = the task was reclaimed and its registers saved)."""
    raw = yield SectionRead(0, 4)
    return int.from_bytes(raw[:4], "little")


def _note_client_rewait(os: Ucos) -> None:
    """Book a spurious-wake re-wait (woken while the task is still BUSY)
    in the kernel's obs layer — the ``client_rewait`` recovery path of
    the fault-site registry (no-op in the native port)."""
    kernel = getattr(getattr(os, "port", None), "kernel", None)
    if kernel is None:
        return
    kernel.metrics.counter("recovery.client_rewaits").inc()


def _note_sw_fallback(os: Ucos, kind: str) -> None:
    """Book a hardware->software degradation in the kernel's obs layer
    (no-op in the native port, which runs without a kernel)."""
    kernel = getattr(getattr(os, "port", None), "kernel", None)
    if kernel is None:
        return
    kernel.metrics.counter("recovery.sw_fallbacks").inc()
    kernel.tracer.mark("sw_fallback", cat="fault", kind=kind)


def _note_fresh_request(os: Ucos) -> None:
    """Feed the guest retry budget one unit of fresh traffic (no-op
    without a kernel or without a budget attached)."""
    kernel = getattr(getattr(os, "port", None), "kernel", None)
    if kernel is None or kernel.guest_retry_budget is None:
        return
    kernel.guest_retry_budget.note_fresh()


def _take_retry_budget(os: Ucos) -> bool:
    """May the BUSY/MANAGER_RESTARTING loop retry?  True without a
    kernel or budget (legacy unbudgeted behaviour); a denial is counted
    in ``recovery.retry_denials`` (the ``retry_budget`` guest leg)."""
    kernel = getattr(getattr(os, "port", None), "kernel", None)
    if kernel is None or kernel.guest_retry_budget is None:
        return True
    if kernel.guest_retry_budget.try_retry():
        return True
    kernel.metrics.counter("recovery.retry_denials").inc()
    kernel.tracer.mark("retry_denied", cat="fault")
    return False


def _brownout_reroute(os: Ucos, kind: str) -> bool:
    """Should a *best-effort* task skip the fabric right now?

    True iff a :class:`~repro.hwmgr.brownout.BrownoutController` is
    attached and active: the caller goes straight to the bit-identical
    software path (O5), counted in ``recovery.brownout_reroutes``."""
    kernel = getattr(getattr(os, "port", None), "kernel", None)
    if kernel is None or kernel.brownout is None \
            or not kernel.brownout.active:
        return False
    kernel.brownout.note_reroute()
    kernel.metrics.counter("recovery.brownout_reroutes").inc()
    kernel.tracer.mark("brownout_reroute", cat="fault", kind=kind)
    return True


def fft_compute(os: Ucos, task_table_id: int, task_name: str,
                data_in: bytes, *, sem: Semaphore | None = None,
                allow_software: bool = True,
                besteffort: bool = False,
                hw_retries: int = 2) -> Generator:
    """Adaptive FFT: try the fabric, fall back to the CPU when it is busy.

    This is the hardware/software co-execution the paper's introduction
    motivates ("dynamically dispatch and manage hardware accelerators as
    flexible software functions"): when no PRR can take the task, the same
    transform runs as a software radix-2 FFT with its CPU cost charged
    through the workload profile.  Returns an :class:`HwTaskHandle` whose
    ``output`` is bit-compatible either way; ``prr_id`` is None for the
    software path.
    """
    from ..dsp import fft as fft_golden
    from ..workloads.profiles import fft_sw_profile
    from . import layout_guest as GL
    from .actions import Compute
    import numpy as np

    if besteffort and allow_software and _brownout_reroute(os, "fft"):
        # Brownout: the fabric is saturated, so best-effort work takes
        # the software path immediately — same bytes, no PRR queueing.
        handle = HwTaskHandle(status=HcStatus.BUSY)
    else:
        handle = yield from hw_task_run(os, task_table_id, task_name,
                                        data_in, sem=sem,
                                        max_retries=hw_retries)
    if handle.status == HcStatus.SUCCESS or not allow_software:
        return handle

    _note_sw_fallback(os, "fft")
    n = int(task_name[3:])
    prof = fft_sw_profile(n)
    yield Compute(prof.instrs, prof.mem_accesses,
                  ((GL.USER_BASE + 0x20000, prof.ws_bytes),),
                  prof.write_frac)
    x = np.frombuffer(data_in, dtype=np.complex64)[:n]
    handle.status = HcStatus.SUCCESS
    handle.prr_id = None
    handle.output = fft_golden.fft(x).tobytes()
    return handle


def qam_compute(os: Ucos, task_table_id: int, task_name: str,
                data_in: bytes, *, sem: Semaphore | None = None,
                allow_software: bool = True,
                besteffort: bool = False,
                hw_retries: int = 2) -> Generator:
    """Adaptive QAM modulation: fabric first, CPU fallback on HW failure.

    The software path is bit-compatible with the ``qamN`` IP core (both
    share the :mod:`repro.dsp.qam` golden model); its CPU cost is charged
    through :func:`repro.workloads.profiles.qam_sw_profile`.  ``prr_id``
    is None on the software path, as for :func:`fft_compute`.
    """
    from ..dsp import qam as qam_golden
    from ..workloads.profiles import qam_sw_profile
    from . import layout_guest as GL
    from .actions import Compute

    if besteffort and allow_software and _brownout_reroute(os, "qam"):
        handle = HwTaskHandle(status=HcStatus.BUSY)
    else:
        handle = yield from hw_task_run(os, task_table_id, task_name,
                                        data_in, sem=sem,
                                        max_retries=hw_retries)
    if handle.status == HcStatus.SUCCESS or not allow_software:
        return handle

    _note_sw_fallback(os, "qam")
    order = int(task_name[3:])
    prof = qam_sw_profile(order, len(data_in))
    yield Compute(prof.instrs, prof.mem_accesses,
                  ((GL.USER_BASE + 0x20000, prof.ws_bytes),),
                  prof.write_frac)
    symbols = qam_golden.pack_bits_to_symbols(data_in, order)
    handle.status = HcStatus.SUCCESS
    handle.prr_id = None
    handle.output = qam_golden.modulate(symbols, order).tobytes()
    return handle
