"""Flight recorder: deterministic post-mortem bundles for incidents.

Armed on a kernel (:meth:`FlightRecorder.arm` sets ``kernel.flight``),
the recorder dumps a single post-mortem bundle the first time something
goes wrong — an invariant violation (I1-I8, L1-L6, reported through
:func:`repro.hwmgr.invariants.report_violations`), a fault-matrix check
failure, a VM halted on an exhausted restart budget, or an unhandled
exception escaping the kernel run loop.  Later triggers in the same run
are counted but suppressed: the first bundle is the interesting one, and
first-wins keeps the artifact deterministic.

The bundle is sorted-keys JSON containing everything a post-mortem
needs and nothing host-dependent: the last-N trace-ring tail, a full
:class:`~repro.obs.aggregate.MetricSnapshot`, the per-VM cycle ledger,
the active :class:`~repro.faults.plan.FaultPlan` state, the scenario
seed, the sim cycle, and a fresh invariant sweep taken at dump time.
Same seed + same injected fault => byte-identical bundle (tested in
``tests/obs/test_flight.py``; docs/OBSERVABILITY.md §13 documents the
layout).  Inspect one with ``python -m repro postmortem <bundle>``.
"""

from __future__ import annotations

import json
from typing import Any

from .aggregate import MetricSnapshot

#: Bump when the bundle layout changes.
FLIGHT_SCHEMA_VERSION = 1

#: Trace-ring tail length captured in a bundle.
DEFAULT_LAST_N = 256

_REQUIRED_KEYS = {
    "schema_version": int,
    "reason": str,
    "info": dict,
    "cycle": int,
    "seed": (int, type(None)),
    "trace_tail": list,
    "trace_dropped": int,
    "metrics": dict,
    "ledger": dict,
    "fault_plan": (dict, type(None)),
    "invariants": dict,
    "context": dict,
}


class FlightRecorder:
    """One recorder, one bundle; re-arm a fresh instance per run."""

    def __init__(self, out: str | None = None, *,
                 last_n: int = DEFAULT_LAST_N) -> None:
        self.out = out
        self.last_n = last_n
        self.kernel = None
        self.seed: int | None = None
        self.plan = None
        self.context: dict[str, Any] = {}
        #: The first bundle dumped (None until a trigger fires).
        self.bundle: dict[str, Any] | None = None
        #: Triggers after the first, counted but not dumped.
        self.suppressed = 0

    def arm(self, kernel, *, seed: int | None = None, plan=None,
            context: dict[str, Any] | None = None) -> "FlightRecorder":
        """Attach to a kernel (``kernel.flight``) and remember run facts."""
        self.kernel = kernel
        self.seed = seed
        self.plan = plan if plan is not None else getattr(
            getattr(kernel, "faults", None), "plan", None)
        self.context = dict(context or {})
        kernel.flight = self
        return self

    # -- dumping ------------------------------------------------------------

    def dump(self, reason: str, **info: Any) -> dict[str, Any]:
        """Build (and write, first trigger only) the post-mortem bundle."""
        if self.bundle is not None:
            self.suppressed += 1
            return self.bundle
        self.bundle = self._build(reason, info)
        if self.out:
            write_bundle(self.bundle, self.out)
        return self.bundle

    def _build(self, reason: str, info: dict[str, Any]) -> dict[str, Any]:
        k = self.kernel
        if k is None:
            raise ValueError("flight recorder not armed")
        # Dump-time invariant sweep: read-only, and worth having even
        # when the trigger was something else entirely.
        from ..hwmgr.invariants import (
            check_invariants,
            check_lifecycle_invariants,
        )
        tail = list(k.tracer.events)[-self.last_n:]
        plan = self.plan
        fault_plan = None
        if plan is not None:
            fault_plan = {
                "seed": plan.seed,
                "sites": plan.summary(),
                "specs": [{
                    "site": s.site, "after": s.after,
                    "max_fires": s.max_fires, "every": s.every,
                    "probability": s.probability,
                    "params": dict(s.params),
                } for s in plan.specs],
            }
        k.acct.settle()
        return {
            "schema_version": FLIGHT_SCHEMA_VERSION,
            "reason": reason,
            "info": _jsonable(info),
            "cycle": k.sim.now,
            "seed": self.seed,
            "trace_tail": [{"t": e.t, "name": e.name, "cat": e.cat,
                            "info": _jsonable(e.info)} for e in tail],
            "trace_dropped": k.tracer.events.dropped,
            "metrics": MetricSnapshot.of(k.metrics).to_dict(),
            "ledger": k.acct.snapshot(),
            "fault_plan": fault_plan,
            "invariants": {
                "hardware": check_invariants(k),
                "lifecycle": check_lifecycle_invariants(k),
            },
            "context": _jsonable(self.context),
        }


def _jsonable(obj: Any) -> Any:
    """Deterministic JSON-safe copy (repr for anything exotic)."""
    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return repr(obj)


def maybe_dump(kernel, reason: str, **info: Any) -> dict[str, Any] | None:
    """Trigger the kernel's flight recorder, if one is armed."""
    fr = getattr(kernel, "flight", None)
    if fr is None:
        return None
    return fr.dump(reason, **info)


# -- bundle I/O + validation --------------------------------------------------

def write_bundle(bundle: dict[str, Any], path: str) -> None:
    with open(path, "w", encoding="utf-8") as f:
        json.dump(bundle, f, indent=2, sort_keys=True)
        f.write("\n")


def load_bundle(path: str) -> dict[str, Any]:
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def validate_bundle(bundle: Any) -> list[str]:
    """Schema check; returns human-readable problems (empty = valid)."""
    problems: list[str] = []
    if not isinstance(bundle, dict):
        return ["bundle is not a JSON object"]
    for key, types in _REQUIRED_KEYS.items():
        if key not in bundle:
            problems.append(f"missing key {key!r}")
        elif not isinstance(bundle[key], types):
            problems.append(f"key {key!r} has type "
                            f"{type(bundle[key]).__name__}")
    if problems:
        return problems
    if bundle["schema_version"] != FLIGHT_SCHEMA_VERSION:
        problems.append(f"schema_version {bundle['schema_version']} != "
                        f"{FLIGHT_SCHEMA_VERSION}")
    for i, ev in enumerate(bundle["trace_tail"]):
        if not isinstance(ev, dict) or not {"t", "name", "cat",
                                            "info"} <= set(ev):
            problems.append(f"trace_tail[{i}] malformed")
            break
    for section in ("hardware", "lifecycle"):
        if not isinstance(bundle["invariants"].get(section), list):
            problems.append(f"invariants.{section} missing or not a list")
    for section in ("counters", "gauges", "histograms"):
        if section not in bundle["metrics"]:
            problems.append(f"metrics.{section} missing")
    return problems


def render_bundle(bundle: dict[str, Any]) -> str:
    """Human-readable post-mortem summary (the ``postmortem`` command)."""
    lines = [
        "=== post-mortem bundle ===",
        f"reason:  {bundle['reason']}",
        f"cycle:   {bundle['cycle']}",
        f"seed:    {bundle['seed']}",
    ]
    if bundle["info"]:
        lines.append("info:    " + json.dumps(bundle["info"], sort_keys=True))
    if bundle["context"]:
        lines.append("context: " + json.dumps(bundle["context"],
                                              sort_keys=True))
    inv = bundle["invariants"]
    n_viol = len(inv["hardware"]) + len(inv["lifecycle"])
    lines.append(f"invariants at dump time: {n_viol} violation(s)")
    for section in ("hardware", "lifecycle"):
        for what in inv[section]:
            lines.append(f"  [{section}] {what}")
    plan = bundle["fault_plan"]
    if plan:
        lines.append(f"fault plan (seed {plan['seed']}):")
        for site, st in sorted(plan["sites"].items()):
            lines.append(f"  {site:22s} occurrences={st['occurrences']} "
                         f"fires={st['fires']}")
    ledger = bundle["ledger"]
    vms = ledger.get("vms", {})
    lines.append(f"ledger: {len(vms)} VMs, "
                 f"kernel {ledger.get('kernel_cycles', 0)} cycles, "
                 f"idle {ledger.get('idle_cycles', 0)} cycles")
    counters = bundle["metrics"]["counters"]
    interesting = {k: v for k, v in counters.items() if v}
    lines.append(f"metrics: {len(counters)} counters "
                 f"({len(interesting)} non-zero), "
                 f"{len(bundle['metrics']['histograms'])} histograms")
    tail = bundle["trace_tail"]
    lines.append(f"trace tail: last {len(tail)} events "
                 f"({bundle['trace_dropped']} older events dropped by "
                 f"the ring)")
    for ev in tail[-20:]:
        info = json.dumps(ev["info"], sort_keys=True) if ev["info"] else ""
        lines.append(f"  {ev['t']:>12} {ev['cat']:10s} {ev['name']:24s} "
                     f"{info}")
    return "\n".join(lines)
