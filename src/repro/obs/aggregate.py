"""Mergeable metric snapshots: the fleet-aggregation substrate.

A :class:`MetricSnapshot` is a frozen, JSON-stable image of a
:class:`~repro.obs.metrics.MetricsRegistry`: counter values, gauge
values, and full histogram state (bucket vector, count, sum, min, max)
keyed by the registry's canonical ``name{label=value,...}`` strings.

Snapshots form a commutative monoid under :meth:`MetricSnapshot.merge`:

* counters and gauges add,
* histograms with identical bucket ladders merge by element-wise bucket
  addition plus count/sum addition and min/max folds,
* :meth:`MetricSnapshot.empty` is the identity.

Because every metric in the simulation is integer-valued (cycle counts,
event tallies), the merge is *exact*: merging K per-shard snapshots in
any order or grouping produces byte-for-byte the same canonical JSON as
accumulating everything in a single process.  That law is what lets a
fleet dispatcher (ROADMAP item 1) sum per-board registries without a
coordination step, and it is property-tested in
``tests/obs/test_aggregate.py``.

Stream deltas (docs/OBSERVABILITY.md §10) fold into snapshots with
:func:`apply_delta`: ``empty + every delta of a run == final snapshot``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from .metrics import MetricsRegistry, _labels_str

#: Bump when the snapshot/delta wire layout changes.
SNAPSHOT_SCHEMA_VERSION = 1


def _fold_min(a: int | None, b: int | None) -> int | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _fold_max(a: int | None, b: int | None) -> int | None:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


@dataclass(frozen=True)
class HistState:
    """Full mergeable histogram state (one registry histogram)."""

    buckets: tuple
    counts: tuple
    count: int
    sum: int
    min: int | None
    max: int | None

    def merge(self, other: "HistState") -> "HistState":
        if self.buckets != other.buckets:
            raise ValueError(
                f"cannot merge histograms with different bucket ladders: "
                f"{self.buckets} vs {other.buckets}")
        return HistState(
            buckets=self.buckets,
            counts=tuple(a + b for a, b in zip(self.counts, other.counts)),
            count=self.count + other.count,
            sum=self.sum + other.sum,
            min=_fold_min(self.min, other.min),
            max=_fold_max(self.max, other.max))

    def as_dict(self) -> dict[str, Any]:
        return {"buckets": list(self.buckets), "counts": list(self.counts),
                "count": self.count, "sum": self.sum,
                "min": self.min, "max": self.max}

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "HistState":
        return cls(buckets=tuple(d["buckets"]), counts=tuple(d["counts"]),
                   count=d["count"], sum=d["sum"],
                   min=d["min"], max=d["max"])


@dataclass(frozen=True)
class MetricSnapshot:
    """Immutable registry image; merge with ``+`` or :meth:`merge`."""

    counters: dict[str, int] = field(default_factory=dict)
    gauges: dict[str, int] = field(default_factory=dict)
    histograms: dict[str, HistState] = field(default_factory=dict)

    @classmethod
    def empty(cls) -> "MetricSnapshot":
        """The merge identity."""
        return cls()

    @classmethod
    def of(cls, registry: MetricsRegistry) -> "MetricSnapshot":
        """Snapshot a live registry (read-only; the registry keeps going)."""
        counters = {c.name + _labels_str(c.labels): c.value
                    for c in registry.counters()}
        gauges = {g.name + _labels_str(g.labels): g.value
                  for g in registry.gauges()}
        hists = {
            h.name + _labels_str(h.labels): HistState(
                buckets=tuple(h.buckets), counts=tuple(h.counts),
                count=h.count, sum=h.sum, min=h.min, max=h.max)
            for h in registry.histograms()}
        return cls(counters=counters, gauges=gauges, histograms=hists)

    # -- the merge law ------------------------------------------------------

    def merge(self, other: "MetricSnapshot") -> "MetricSnapshot":
        """Associative, commutative, exact for integer-valued metrics."""
        counters = dict(self.counters)
        for k, v in other.counters.items():
            counters[k] = counters.get(k, 0) + v
        gauges = dict(self.gauges)
        for k, v in other.gauges.items():
            gauges[k] = gauges.get(k, 0) + v
        hists = dict(self.histograms)
        for k, h in other.histograms.items():
            hists[k] = hists[k].merge(h) if k in hists else h
        return MetricSnapshot(counters=counters, gauges=gauges,
                              histograms=hists)

    def __add__(self, other: "MetricSnapshot") -> "MetricSnapshot":
        return self.merge(other)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "histograms": {k: h.as_dict()
                           for k, h in sorted(self.histograms.items())},
        }

    @classmethod
    def from_dict(cls, d: dict[str, Any]) -> "MetricSnapshot":
        if d.get("schema_version") != SNAPSHOT_SCHEMA_VERSION:
            raise ValueError(
                f"snapshot schema {d.get('schema_version')!r} != "
                f"{SNAPSHOT_SCHEMA_VERSION}")
        return cls(
            counters=dict(d["counters"]),
            gauges=dict(d["gauges"]),
            histograms={k: HistState.from_dict(h)
                        for k, h in d["histograms"].items()})

    def canonical_bytes(self) -> bytes:
        """The byte-identity form the merge law is stated over."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":")).encode()


def merge_all(snapshots) -> MetricSnapshot:
    """Fold any number of snapshots (any order — the law guarantees it)."""
    out = MetricSnapshot.empty()
    for s in snapshots:
        out = out.merge(s)
    return out


def delta_between(prev: MetricSnapshot, cur: MetricSnapshot) -> dict[str, Any]:
    """Sparse wire delta from ``prev`` to ``cur`` (stream record body).

    Only changed entries appear.  Counter/histogram entries carry
    *increments*; gauges carry the new absolute value (gauges are
    point-in-time, not cumulative).  Histogram min/max carry the new
    absolute bound when it moved (folding them with min/max is exact).
    """
    counters = {k: v - prev.counters.get(k, 0)
                for k, v in cur.counters.items()
                if v != prev.counters.get(k, 0)}
    gauges = {k: v for k, v in cur.gauges.items()
              if v != prev.gauges.get(k, 0) or k not in prev.gauges}
    hists: dict[str, Any] = {}
    for k, h in cur.histograms.items():
        p = prev.histograms.get(k)
        if p is not None and p == h:
            continue
        if p is not None and p.buckets != h.buckets:
            raise ValueError(f"histogram {k!r} changed bucket ladder mid-run")
        pc = p.counts if p is not None else (0,) * len(h.counts)
        hists[k] = {
            "buckets": list(h.buckets),
            "counts": [a - b for a, b in zip(h.counts, pc)],
            "count": h.count - (p.count if p else 0),
            "sum": h.sum - (p.sum if p else 0),
            "min": h.min, "max": h.max,
        }
    out: dict[str, Any] = {}
    if counters:
        out["counters"] = dict(sorted(counters.items()))
    if gauges:
        out["gauges"] = dict(sorted(gauges.items()))
    if hists:
        out["histograms"] = dict(sorted(hists.items()))
    return out


def apply_delta(snapshot: MetricSnapshot, delta: dict[str, Any]
                ) -> MetricSnapshot:
    """Fold one stream delta body into a snapshot.

    Law: ``empty + header-snapshot + every delta == final snapshot``
    (tested in ``tests/obs/test_stream.py``).
    """
    counters = dict(snapshot.counters)
    for k, v in delta.get("counters", {}).items():
        counters[k] = counters.get(k, 0) + v
    gauges = dict(snapshot.gauges)
    for k, v in delta.get("gauges", {}).items():
        gauges[k] = v
    hists = dict(snapshot.histograms)
    for k, d in delta.get("histograms", {}).items():
        add = HistState(buckets=tuple(d["buckets"]),
                        counts=tuple(d["counts"]),
                        count=d["count"], sum=d["sum"],
                        min=d["min"], max=d["max"])
        p = hists.get(k)
        if p is None:
            hists[k] = add
        else:
            hists[k] = HistState(
                buckets=p.buckets,
                counts=tuple(a + b for a, b in zip(p.counts, add.counts)),
                count=p.count + add.count,
                sum=p.sum + add.sum,
                # Deltas carry the new absolute bounds, so folding keeps
                # the invariant min(prev, new) == new observed min.
                min=_fold_min(p.min, add.min),
                max=_fold_max(p.max, add.max))
    return MetricSnapshot(counters=counters, gauges=gauges, histograms=hists)
