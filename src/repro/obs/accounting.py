"""Per-VM resource accounting: who got the CPU, the vIRQs, and the fabric.

The kernel attributes every simulated cycle to exactly one *context* by
telling the accountant about transitions (a sampling clock, not per-event
charging — transitions are rare, so the hot path stays one subtraction):

* ``guest_kernel`` / ``guest_user`` — a VM executing, split by its DACR
  view (Table II): guest-kernel mode vs. guest-user mode;
* ``kernel`` — Mini-NOVA itself, optionally *on behalf of* a VM (its
  hypercalls, its vIRQ injections, its switch-in cost);
* ``idle`` — discrete-event fast-forwards while nothing is runnable
  (reported by the engine, see :meth:`Simulator.attach_accounting`).

Because charging is transition-driven against the shared cycle clock,
the books balance **exactly**: the sum of all per-VM cycles, unattributed
kernel cycles and idle cycles equals the simulated cycles elapsed since
:meth:`VmAccounting.bind` — an invariant pinned by
``tests/integration/test_accounting_invariant.py``.

On top of the cycle ledger the accountant keeps per-VM event tallies fed
by kernel/scheduler/vGIC/manager probes (hypercalls, vIRQ pend/inject
with injection-to-delivery latency, switch-ins, quantum rotations) and
per-PRR occupancy intervals reconciled from the live fabric state, so
``python -m repro bench`` can emit a complete per-VM table (see
docs/BENCHMARKS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

#: Context kinds a cycle can be attributed to.
CONTEXTS = ("kernel", "guest_kernel", "guest_user", "idle")

#: Safety cap on retained vIRQ latency samples (oldest half is compacted
#: into the histogram-backed summary only; exact percentiles then degrade
#: gracefully instead of growing without bound on very long runs).
MAX_VIRQ_SAMPLES = 1 << 18


@dataclass
class VmAccount:
    """Everything attributed to one VM (or service PD)."""

    vm_id: int
    name: str = ""
    #: Cycles the VM spent executing, split by guest privilege view.
    guest_kernel_cycles: int = 0
    guest_user_cycles: int = 0
    #: Kernel cycles spent on this VM's behalf (hypercall handling,
    #: vIRQ injection, switch-in cost, deferred-result resume).
    kernel_cycles: int = 0
    #: Event tallies.
    hypercalls: int = 0
    virqs_pended: int = 0
    virqs_injected: int = 0
    switches_in: int = 0
    rotations: int = 0
    #: Total cycles this VM held fabric regions (summed over PRRs; two
    #: PRRs held for one cycle count as two occupancy cycles).
    prr_occupancy_cycles: int = 0
    #: vIRQ injection-to-delivery latency samples (pend -> guest entry).
    virq_latency: list[int] = field(default_factory=list)

    @property
    def cpu_cycles(self) -> int:
        """All cycles attributed to this VM, any context."""
        return (self.guest_kernel_cycles + self.guest_user_cycles
                + self.kernel_cycles)

    def as_dict(self) -> dict[str, Any]:
        return {
            "vm_id": self.vm_id, "name": self.name,
            "guest_kernel_cycles": self.guest_kernel_cycles,
            "guest_user_cycles": self.guest_user_cycles,
            "kernel_cycles": self.kernel_cycles,
            "cpu_cycles": self.cpu_cycles,
            "hypercalls": self.hypercalls,
            "virqs_pended": self.virqs_pended,
            "virqs_injected": self.virqs_injected,
            "switches_in": self.switches_in,
            "rotations": self.rotations,
            "prr_occupancy_cycles": self.prr_occupancy_cycles,
        }


class VmAccounting:
    """Transition-driven cycle attribution plus per-VM event tallies.

    The owner (the kernel) binds a cycle clock, registers VMs, and marks
    context transitions with :meth:`push` / :meth:`pop` (re-entrant, so
    nested attribution — a vIRQ injection inside a switch-in — charges
    the innermost context).  All probe methods are safe no-ops until
    :meth:`bind` is called, so standalone unit tests of the scheduler or
    vGIC never need an accountant.
    """

    def __init__(self, metrics=None) -> None:
        self._clock: Any = None
        self.start_cycle = 0
        self._last = 0
        self._ctx: tuple[str, int | None] = ("kernel", None)
        self.vms: dict[int, VmAccount] = {}
        #: Kernel cycles not attributable to any VM (boot, IRQ ack,
        #: scheduler decisions, timer reprogramming between VMs).
        self.kernel_cycles = 0
        #: Cycles the engine fast-forwarded past (nothing runnable).
        self.idle_cycles = 0
        #: Pending vIRQ timestamps: (vm, irq) -> pend cycle.
        self._virq_pend_t: dict[tuple[int, int], int] = {}
        #: Open PRR occupancy intervals: prr_id -> (vm_id, start cycle).
        self._prr_open: dict[int, tuple[int, int]] = {}
        self._virq_dropped = 0
        # Optional metrics mirror: delivery latency as a histogram so the
        # always-on registry exposes it too (docs/OBSERVABILITY.md §6).
        self._m_virq_latency = (
            metrics.histogram("kernel.virq_delivery_cycles")
            if metrics is not None else None)

    # -- lifecycle ---------------------------------------------------------

    def bind(self, clock_like: Any) -> None:
        """Attach the cycle clock; accounting starts at its current time."""
        self._clock = clock_like
        self.start_cycle = self._last = clock_like.now
        self._ctx = ("kernel", None)

    @property
    def bound(self) -> bool:
        return self._clock is not None

    def register_vm(self, vm_id: int, name: str = "") -> VmAccount:
        acct = self.vms.get(vm_id)
        if acct is None:
            acct = self.vms[vm_id] = VmAccount(vm_id=vm_id, name=name)
        elif name:
            acct.name = name
        return acct

    def _vm(self, vm_id: int) -> VmAccount:
        return self.vms.get(vm_id) or self.register_vm(vm_id)

    # -- context clock ------------------------------------------------------

    def _settle(self) -> None:
        """Charge the cycles since the last transition to the open context."""
        now = self._clock.now
        dt = now - self._last
        if dt:
            kind, vm = self._ctx
            if kind == "kernel":
                if vm is None:
                    self.kernel_cycles += dt
                else:
                    self._vm(vm).kernel_cycles += dt
            elif kind == "guest_kernel":
                self._vm(vm).guest_kernel_cycles += dt
            else:   # guest_user
                self._vm(vm).guest_user_cycles += dt
            self._last = now

    def push(self, kind: str, vm_id: int | None = None) -> tuple[str, int | None]:
        """Enter a context; returns the previous one for :meth:`pop`."""
        if self._clock is None:
            return self._ctx
        self._settle()
        prev, self._ctx = self._ctx, (kind, vm_id)
        return prev

    def pop(self, prev: tuple[str, int | None]) -> None:
        """Restore the context returned by the matching :meth:`push`."""
        if self._clock is None:
            return
        self._settle()
        self._ctx = prev

    def guest_push(self, vm_id: int, guest_kernel_mode: bool) -> tuple[str, int | None]:
        """Enter guest execution in the VM's current privilege view."""
        return self.push("guest_kernel" if guest_kernel_mode
                         else "guest_user", vm_id)

    def charge_idle(self, dcycles: int) -> None:
        """Engine probe: the clock is about to fast-forward ``dcycles``
        with nothing runnable.  Called *before* the jump, so the open
        context is settled first and the jump lands on the idle ledger."""
        if self._clock is None or dcycles <= 0:
            return
        self._settle()
        self.idle_cycles += dcycles
        self._last += dcycles

    def settle(self) -> None:
        """Flush the open context up to the current cycle (do this before
        reading the books mid-run or at the end of a scenario)."""
        if self._clock is not None:
            self._settle()

    # -- event probes -------------------------------------------------------

    def note_hypercall(self, vm_id: int) -> None:
        if self._clock is not None:
            self._vm(vm_id).hypercalls += 1

    def note_switch_in(self, vm_id: int) -> None:
        if self._clock is not None:
            self._vm(vm_id).switches_in += 1

    def note_rotation(self, vm_id: int) -> None:
        if self._clock is not None:
            self._vm(vm_id).rotations += 1

    def note_virq_pended(self, vm_id: int, irq_id: int) -> None:
        """vGIC probe: ``irq_id`` became pending for ``vm_id`` now."""
        if self._clock is None:
            return
        acct = self._vm(vm_id)
        acct.virqs_pended += 1
        self._virq_pend_t.setdefault((vm_id, irq_id), self._clock.now)

    def note_virq_injected(self, vm_id: int, irq_id: int) -> None:
        """vGIC probe: ``irq_id`` was delivered to ``vm_id``'s handler.
        Records the injection-to-delivery latency since the pend."""
        if self._clock is None:
            return
        acct = self._vm(vm_id)
        acct.virqs_injected += 1
        t0 = self._virq_pend_t.pop((vm_id, irq_id), None)
        if t0 is None:
            return
        lat = self._clock.now - t0
        if self._m_virq_latency is not None:
            self._m_virq_latency.observe(lat)
        if len(acct.virq_latency) < MAX_VIRQ_SAMPLES:
            acct.virq_latency.append(lat)
        else:
            self._virq_dropped += 1

    def note_virq_dropped(self, vm_id: int, irq_id: int) -> None:
        """vGIC probe: a pending vIRQ was discarded without delivery
        (unregistered); forget its pend timestamp."""
        self._virq_pend_t.pop((vm_id, irq_id), None)

    # -- PRR occupancy -------------------------------------------------------

    def sync_prr_occupancy(self, prrs: Iterable[Any]) -> None:
        """Manager probe: reconcile occupancy intervals with the live
        fabric state (``prr.client_vm``).  Called after each handled
        request, so reclaim/release transitions close the old client's
        interval at the handling time."""
        if self._clock is None:
            return
        now = self._clock.now
        for prr in prrs:
            open_ = self._prr_open.get(prr.prr_id)
            current = prr.client_vm
            if open_ is not None and open_[0] != current:
                vm, t0 = self._prr_open.pop(prr.prr_id)
                self._vm(vm).prr_occupancy_cycles += now - t0
                open_ = None
            if open_ is None and current is not None:
                self._prr_open[prr.prr_id] = (current, now)

    def close_prr_occupancy(self) -> None:
        """Accrue every still-open occupancy interval up to now (done by
        snapshots, so 'holds a PRR at the end of the run' is counted)."""
        if self._clock is None:
            return
        now = self._clock.now
        for prr_id, (vm, t0) in list(self._prr_open.items()):
            self._vm(vm).prr_occupancy_cycles += now - t0
            self._prr_open[prr_id] = (vm, now)

    # -- reading the books -------------------------------------------------------

    def total_accounted(self) -> int:
        """Sum of every ledger: equals ``clock.now - start_cycle`` after
        :meth:`settle` (the invariant the tests pin)."""
        return (self.kernel_cycles + self.idle_cycles
                + sum(a.cpu_cycles for a in self.vms.values()))

    def virq_latency_samples(self) -> list[int]:
        """All retained injection-to-delivery samples across VMs."""
        out: list[int] = []
        for acct in self.vms.values():
            out.extend(acct.virq_latency)
        return out

    def snapshot(self) -> dict[str, Any]:
        """Settle and return the full accounting state as plain data."""
        self.settle()
        self.close_prr_occupancy()
        return {
            "start_cycle": self.start_cycle,
            "kernel_cycles": self.kernel_cycles,
            "idle_cycles": self.idle_cycles,
            "total_accounted": self.total_accounted(),
            "vms": [self.vms[vm].as_dict() for vm in sorted(self.vms)],
        }

    def render(self) -> str:
        """Plain-text per-VM table (the report / `--metrics` companion)."""
        self.settle()
        self.close_prr_occupancy()
        head = (f"{'vm':>3} {'name':16} {'guest-kern':>12} {'guest-user':>12} "
                f"{'kernel':>10} {'hc':>6} {'virq':>6} {'sw-in':>6} "
                f"{'prr-occ':>12}")
        lines = ["=== per-VM accounting (cycles) ===", head]
        for vm in sorted(self.vms):
            a = self.vms[vm]
            lines.append(
                f"{a.vm_id:>3} {a.name:16.16} {a.guest_kernel_cycles:>12} "
                f"{a.guest_user_cycles:>12} {a.kernel_cycles:>10} "
                f"{a.hypercalls:>6} {a.virqs_injected:>6} "
                f"{a.switches_in:>6} {a.prr_occupancy_cycles:>12}")
        lines.append(f"kernel (unattributed): {self.kernel_cycles} cycles, "
                     f"idle: {self.idle_cycles} cycles")
        return "\n".join(lines)
