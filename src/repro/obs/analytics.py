"""Latency analytics: percentile summaries and critical-path breakdowns.

The paper's whole evaluation is latency *distributions* — vCPU switch
costs (Table I), virtualization overhead (Table III), reconfiguration
latency and the Fig. 9 degradation curves — so raw traces and bucket
counts are not enough.  This module turns both measurement substrates
into the same summary shape:

* :class:`SeriesSummary` — count / mean / p50 / p90 / p99 / min / max,
  computed either from **exact samples** (trace-span durations, nearest
  rank) or from **Histogram buckets**
  (:meth:`~repro.obs.metrics.Histogram.percentile` estimates);
* :func:`dpr_chains` — per-chain critical-path breakdown of the DPR
  lifecycle (request trap → manager decision → PCAP streaming →
  interface mapping), built from the documented event contract of
  docs/OBSERVABILITY.md;
* :func:`virq_latency_samples` — PL-IRQ injection-to-delivery latency
  per distribution sequence (routing + injection halves).

Everything here is pure computation over a :class:`Tracer` /
:class:`Histogram` — no simulation state, so it is equally usable on a
live scenario, in tests, and in the ``python -m repro bench`` artifact
pipeline (see docs/BENCHMARKS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from .metrics import Histogram
from .trace import Tracer

#: The guaranteed DPR request chain (docs/OBSERVABILITY.md §5).
HWREQ_CHAIN = ("hwreq_trap", "mgr_exec_start", "mgr_exec_end",
               "hwreq_resumed")

#: Quantiles every summary reports.
QUANTILES = (0.50, 0.90, 0.99)


def percentile_of_samples(samples: Sequence[float], q: float) -> float | None:
    """Nearest-rank percentile of exact samples; ``q`` in ``[0, 1]``.

    Returns ``None`` for an empty sequence (mirrors
    :meth:`Histogram.percentile`).  The input need not be sorted.
    """
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1]: {q}")
    if not samples:
        return None
    s = sorted(samples)
    if q == 0.0:
        return float(s[0])
    rank = max(1, -(-q * len(s) // 1))          # ceil(q * n)
    return float(s[int(rank) - 1])


@dataclass(frozen=True)
class SeriesSummary:
    """Distribution summary of one latency series (cycles by default)."""

    count: int
    mean: float
    p50: float
    p90: float
    p99: float
    min: float
    max: float
    unit: str = "cycles"

    @classmethod
    def from_samples(cls, samples: Sequence[float],
                     unit: str = "cycles") -> "SeriesSummary":
        """Exact summary (nearest-rank percentiles) over raw samples."""
        if not samples:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, unit)
        s = sorted(samples)
        p50, p90, p99 = (percentile_of_samples(s, q) for q in QUANTILES)
        return cls(count=len(s), mean=sum(s) / len(s),
                   p50=float(p50), p90=float(p90), p99=float(p99),
                   min=float(s[0]), max=float(s[-1]), unit=unit)

    @classmethod
    def from_histogram(cls, h: Histogram,
                       unit: str = "cycles") -> "SeriesSummary":
        """Bucket-estimated summary (upper-bound percentiles clamped to
        the observed min/max — see :meth:`Histogram.percentile`)."""
        if h.count == 0:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, unit)
        p50, p90, p99 = (h.percentile(q) for q in QUANTILES)
        return cls(count=h.count, mean=h.mean,
                   p50=float(p50), p90=float(p90), p99=float(p99),
                   min=float(h.min), max=float(h.max), unit=unit)

    def scaled(self, factor: float, unit: str) -> "SeriesSummary":
        """The same distribution in another unit (e.g. cycles -> µs)."""
        return SeriesSummary(
            count=self.count, mean=self.mean * factor,
            p50=self.p50 * factor, p90=self.p90 * factor,
            p99=self.p99 * factor, min=self.min * factor,
            max=self.max * factor, unit=unit)

    def as_dict(self) -> dict[str, Any]:
        return {"count": self.count, "mean": self.mean, "p50": self.p50,
                "p90": self.p90, "p99": self.p99, "min": self.min,
                "max": self.max, "unit": self.unit}


def summarize(samples_or_hist, unit: str = "cycles") -> SeriesSummary:
    """Summarize either a :class:`Histogram` or a sample sequence."""
    if isinstance(samples_or_hist, Histogram):
        return SeriesSummary.from_histogram(samples_or_hist, unit)
    return SeriesSummary.from_samples(samples_or_hist, unit)


# --------------------------------------------------------------- DPR chains

@dataclass(frozen=True)
class DprChain:
    """Critical path of one reconfiguring hardware-task request.

    Stage boundaries (all cycle timestamps from the trace):

    * ``entry``       — SVC trap → manager's first instruction
    * ``decide``      — manager start → PCAP streaming launched (task
      lookup, PRR selection, reclaim, mapping, hwMMU load)
    * ``pcap``        — bitstream streaming into the PRR
    * ``resume``      — manager posted the result → requester resumed
      (overlaps ``pcap``: stage 6 explicitly does not await completion)
    * ``ready``       — trap → reconfiguration landed: the end-to-end
      latency until the new task is usable by the guest
    """

    vm: int
    prr: int
    task: str
    t_request: int
    entry: int
    decide: int
    pcap: int
    resume: int
    ready: int

    def as_dict(self) -> dict[str, Any]:
        return {"vm": self.vm, "prr": self.prr, "task": self.task,
                "t_request": self.t_request, "entry": self.entry,
                "decide": self.decide, "pcap": self.pcap,
                "resume": self.resume, "ready": self.ready}


def dpr_chains(tracer: Tracer) -> list[DprChain]:
    """Pair every PCAP transfer with the request chain that launched it.

    A ``pcap_xfer`` span whose start falls inside a request's
    ``mgr_exec`` window belongs to that request (the manager is a single
    serialized service, so containment is unambiguous).  Requests that
    hit a resident task (no reconfiguration) produce no chain here —
    their latency is fully described by the Table III classes.
    """
    from ..kernel.hypercalls import Hc
    xfers = tracer.spans("pcap_xfer", key="prr")
    chains = tracer.chains(HWREQ_CHAIN, key="vm",
                           first_match={"hc": int(Hc.HWTASK_REQUEST)})
    out: list[DprChain] = []
    for dur, xs, xe in xfers:
        for trap, exec_start, exec_end, resumed in chains:
            if exec_start.t <= xs.t <= exec_end.t:
                out.append(DprChain(
                    vm=trap.info.get("vm", 0),
                    prr=xs.info.get("prr", -1),
                    task=str(xs.info.get("task", "?")),
                    t_request=trap.t,
                    entry=exec_start.t - trap.t,
                    decide=xs.t - exec_start.t,
                    pcap=dur,
                    resume=resumed.t - exec_end.t,
                    ready=xe.t - trap.t))
                break
    return out


def dpr_stage_summaries(chains: Iterable[DprChain]) -> dict[str, SeriesSummary]:
    """Per-stage distribution summaries over a set of DPR chains."""
    chains = list(chains)
    out: dict[str, SeriesSummary] = {}
    for stage in ("entry", "decide", "pcap", "resume", "ready"):
        out[stage] = SeriesSummary.from_samples(
            [getattr(c, stage) for c in chains])
    return out


# ------------------------------------------------------------ vIRQ latency

def plirq_latency_samples(tracer: Tracer) -> list[int]:
    """PL-IRQ injection-to-delivery latency per distribution sequence:
    the routing half (exception vector → vGIC pend) plus the injection
    half (vGIC scan → guest forced to its IRQ entry), matching the
    Table III "PL IRQ entry" definition.  An injection whose routing
    half fell out of the ring counts its injection half alone."""
    route = {s.info["seq"]: d
             for d, s, _ in tracer.spans("plirq_route", key="seq")}
    return [route.pop(s.info["seq"], 0) + d
            for d, s, _ in tracer.spans("plirq_inject", key="seq")]
