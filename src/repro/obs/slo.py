"""Declarative SLO engine evaluated over the telemetry stream.

Rules are plain JSON (``{"slos": [...]}``, see docs/OBSERVABILITY.md
§12) and come in three kinds, all windowed over *sliding sim-time*
windows fed by stream ``delta`` records:

``latency_p99``
    A percentile ceiling on a histogram metric: merge the bucket deltas
    that fell inside ``window_cycles``, estimate ``quantile`` (default
    0.99) by bucket upper bound, breach when it exceeds ``max``.

``rate_floor``
    A recovery-rate floor: windowed ``numerator`` / ``denominator``
    counter increments must stay >= ``min_ratio`` (evaluated only once
    the denominator has at least ``min_denominator`` events in window —
    a rate over nothing is not a signal).

``error_budget``
    Serving-style burn rate: with ``objective`` as the good fraction
    (e.g. 0.999), the windowed ``bad / (good + bad)`` ratio divided by
    the budget ``1 - objective`` is the burn rate; breach when it
    exceeds ``max_burn_rate``.

Breaches are recorded as structured ``slo_breach`` records on the
stream (one per ok->breach transition, not per evaluation), counted in
the ``slo.breaches`` metric, and surfaced to the CLI, which exits with
:data:`EXIT_SLO_BREACH` when any rule breached.

Counter rules match metric *names* (label sets are summed); histogram
rules match one histogram name (label variants merge — same ladder).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from typing import Any

#: ``python -m repro run/bench --slo`` exit status on any breach.
EXIT_SLO_BREACH = 3

_KINDS = ("latency_p99", "rate_floor", "error_budget")


@dataclass(frozen=True)
class SloRule:
    """One parsed rule; ``params`` holds the kind-specific fields."""

    name: str
    kind: str
    window_cycles: int
    params: dict[str, Any] = field(default_factory=dict)


def parse_slo_config(cfg: dict[str, Any]) -> list[SloRule]:
    """Validate a ``{"slos": [...]}`` dict into rules (ValueError on bad)."""
    if not isinstance(cfg, dict) or not isinstance(cfg.get("slos"), list):
        raise ValueError("SLO config must be a dict with an 'slos' list")
    rules: list[SloRule] = []
    seen: set[str] = set()
    for i, raw in enumerate(cfg["slos"]):
        if not isinstance(raw, dict):
            raise ValueError(f"slos[{i}] is not an object")
        name = raw.get("name")
        kind = raw.get("kind")
        window = raw.get("window_cycles")
        if not name or not isinstance(name, str):
            raise ValueError(f"slos[{i}]: missing 'name'")
        if name in seen:
            raise ValueError(f"duplicate SLO name {name!r}")
        seen.add(name)
        if kind not in _KINDS:
            raise ValueError(f"SLO {name!r}: unknown kind {kind!r} "
                             f"(known: {', '.join(_KINDS)})")
        if not isinstance(window, int) or window <= 0:
            raise ValueError(f"SLO {name!r}: window_cycles must be a "
                             f"positive integer")
        required = {
            "latency_p99": ("histogram", "max"),
            "rate_floor": ("numerator", "denominator", "min_ratio"),
            "error_budget": ("good", "bad", "objective", "max_burn_rate"),
        }[kind]
        for key in required:
            if key not in raw:
                raise ValueError(f"SLO {name!r} ({kind}): missing {key!r}")
        if kind == "latency_p99":
            q = raw.get("quantile", 0.99)
            if not 0.0 < q <= 1.0:
                raise ValueError(f"SLO {name!r}: quantile out of (0, 1]")
        if kind == "error_budget" and not 0.0 < raw["objective"] < 1.0:
            raise ValueError(f"SLO {name!r}: objective out of (0, 1)")
        params = {k: v for k, v in raw.items()
                  if k not in ("name", "kind", "window_cycles")}
        rules.append(SloRule(name=name, kind=kind, window_cycles=window,
                             params=params))
    return rules


def load_slo_config(path: str) -> list[SloRule]:
    with open(path, encoding="utf-8") as f:
        return parse_slo_config(json.load(f))


def _metric_name(key: str) -> str:
    """``kernel.hypercalls{hc=TIMER_SET}`` -> ``kernel.hypercalls``."""
    brace = key.find("{")
    return key if brace < 0 else key[:brace]


def evaluate_rate_floor(num: float, den: float, *, min_ratio: float,
                        min_denominator: int = 1
                        ) -> tuple[float | None, bool]:
    """The ``rate_floor`` predicate, shared between :class:`SloEngine`
    windows and offline gates (the fleet surge soak's goodput check):
    returns ``(observed_ratio, breaching)``.  Below ``min_denominator``
    the ratio is statistically meaningless and never breaches."""
    if den >= min_denominator and den > 0:
        observed = num / den
        return observed, observed < min_ratio
    return None, False


def _bucket_quantile(buckets, counts, q: float) -> float | None:
    """Quantile by bucket upper bound; overflow bucket -> +inf."""
    total = sum(counts)
    if not total:
        return None
    rank = max(1, -(-q * total // 1))               # ceil(q * total)
    cum = 0
    for bound, n in zip(buckets, counts):
        cum += n
        if cum >= rank:
            return float(bound)
    return float("inf")                             # fell in +Inf overflow


class _RuleState:
    __slots__ = ("rule", "window", "breaching")

    def __init__(self, rule: SloRule) -> None:
        self.rule = rule
        self.window: deque = deque()                # (t, payload)
        self.breaching = False

    def trim(self, now: int) -> None:
        horizon = now - self.rule.window_cycles
        while self.window and self.window[0][0] <= horizon:
            self.window.popleft()


class SloEngine:
    """Evaluates rules against stream deltas; attach with :meth:`attach`."""

    def __init__(self, rules, *, metrics=None) -> None:
        self.rules = list(rules)
        self._states = [_RuleState(r) for r in self.rules]
        self._stream = None
        self.evaluations = 0
        self.breaches: list[dict[str, Any]] = []
        if metrics is not None:
            self._c_evals = metrics.counter("slo.evaluations")
            self._c_breaches = metrics.counter("slo.breaches")
        else:
            self._c_evals = self._c_breaches = None

    @property
    def ok(self) -> bool:
        return not self.breaches

    def attach(self, stream) -> None:
        """Subscribe to a :class:`~repro.obs.stream.TelemetryStream`."""
        self._stream = stream
        stream.subscribe(self.observe)

    # -- evaluation ---------------------------------------------------------

    def observe(self, record: dict[str, Any]) -> None:
        """Stream subscriber: folds ``delta`` records into the windows."""
        if record.get("type") != "delta":
            return
        t = record["t"]
        for st in self._states:
            self._ingest(st, t, record)
            st.trim(t)
            self._evaluate(st, t)

    def _counter_inc(self, record: dict[str, Any], name: str) -> int:
        return sum(v for k, v in record.get("counters", {}).items()
                   if _metric_name(k) == name)

    def _ingest(self, st: _RuleState, t: int, record: dict[str, Any]) -> None:
        r = st.rule
        if r.kind == "latency_p99":
            target = r.params["histogram"]
            for key, d in record.get("histograms", {}).items():
                if _metric_name(key) == target and d["count"]:
                    st.window.append((t, (tuple(d["buckets"]),
                                          tuple(d["counts"]))))
        elif r.kind == "rate_floor":
            num = self._counter_inc(record, r.params["numerator"])
            den = self._counter_inc(record, r.params["denominator"])
            if num or den:
                st.window.append((t, (num, den)))
        else:                                       # error_budget
            good = self._counter_inc(record, r.params["good"])
            bad = self._counter_inc(record, r.params["bad"])
            if good or bad:
                st.window.append((t, (good, bad)))

    def _evaluate(self, st: _RuleState, t: int) -> None:
        r = st.rule
        self.evaluations += 1
        if self._c_evals is not None:
            self._c_evals.inc()
        observed: float | None = None
        limit: float
        breaching = False
        if r.kind == "latency_p99":
            limit = float(r.params["max"])
            q = float(r.params.get("quantile", 0.99))
            merged: dict[tuple, list[int]] = {}
            for _, (buckets, counts) in st.window:
                acc = merged.setdefault(buckets, [0] * len(counts))
                for i, n in enumerate(counts):
                    acc[i] += n
            # Label variants share the default ladder in practice; with
            # several ladders in window, the worst estimate gates.
            for buckets, counts in merged.items():
                est = _bucket_quantile(buckets, counts, q)
                if est is not None and (observed is None or est > observed):
                    observed = est
            breaching = observed is not None and observed > limit
        elif r.kind == "rate_floor":
            limit = float(r.params["min_ratio"])
            min_den = int(r.params.get("min_denominator", 1))
            num = sum(n for _, (n, _) in st.window)
            den = sum(d for _, (_, d) in st.window)
            observed, breaching = evaluate_rate_floor(
                num, den, min_ratio=limit, min_denominator=min_den)
        else:                                       # error_budget
            limit = float(r.params["max_burn_rate"])
            budget = 1.0 - float(r.params["objective"])
            good = sum(g for _, (g, _) in st.window)
            bad = sum(b for _, (_, b) in st.window)
            total = good + bad
            if total > 0:
                observed = (bad / total) / budget
                breaching = observed > limit
        if breaching and not st.breaching:
            st.breaching = True
            # A p99 in the +Inf overflow bucket is unresolvable; keep the
            # record strict-JSON-safe with a sentinel string.
            obs_out = ("overflow" if observed == float("inf") else observed)
            ev = {"slo": r.name, "kind": r.kind, "t": t,
                  "observed": obs_out, "limit": limit,
                  "window_cycles": r.window_cycles}
            self.breaches.append(ev)
            if self._c_breaches is not None:
                self._c_breaches.inc()
            if self._stream is not None:
                self._stream._emit("slo_breach", ev)
        elif not breaching:
            st.breaching = False

    def summary(self) -> dict[str, Any]:
        """JSON-stable result block (embedded in bench artifacts)."""
        return {
            "rules": [r.name for r in self.rules],
            "evaluations": self.evaluations,
            "breaches": self.breaches,
            "ok": self.ok,
        }
