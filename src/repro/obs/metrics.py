"""Always-on kernel metrics: counters, gauges, fixed-bucket histograms.

Hot-path statistics (VM switches, vIRQ injections per VM, hypercalls by
number, PRR reconfigurations, TLB/cache flushes) are too frequent to trace
event-by-event on long runs but too valuable to lose.  The registry keeps
them as plain Python attributes behind pre-fetched handles, so a probe is
one attribute increment — cheap enough to stay enabled in every run.

Naming follows a ``subsystem.metric`` convention with optional labels,
e.g. ``kernel.hypercalls{hc=TIMER_SET}``; ``render()`` produces the
plain-text dump behind the CLI's ``--metrics`` flag.  Histograms use
*fixed* upper-bound buckets with ``<=`` (Prometheus ``le``) semantics: a
sample equal to a boundary lands in that boundary's bucket, and anything
above the last boundary lands in the implicit ``+Inf`` overflow bucket.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any

#: Default cycle-latency buckets: exponential-ish ladder covering one
#: cache hit (~tens of cycles) up to a full reconfiguration (~millions).
DEFAULT_BUCKETS = (100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000,
                   50_000, 100_000, 500_000, 1_000_000, 5_000_000)

LabelsKey = tuple[tuple[str, Any], ...]


def _labels_key(labels: dict[str, Any]) -> LabelsKey:
    return tuple(sorted(labels.items()))


def _labels_str(labels: LabelsKey) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class Counter:
    """Monotonically increasing count (events, bytes, flushes...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Counter {self.name}{_labels_str(self.labels)}={self.value}>"


class Gauge:
    """Point-in-time value (runnable PDs, ring occupancy...)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelsKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, v) -> None:
        self.value = v

    def inc(self, n=1) -> None:
        self.value += n

    def dec(self, n=1) -> None:
        self.value -= n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Gauge {self.name}{_labels_str(self.labels)}={self.value}>"


class Histogram:
    """Fixed-bucket distribution with ``<=`` bucket semantics.

    ``buckets`` are the inclusive upper bounds; samples above the last
    bound are counted in the ``+Inf`` overflow slot (``counts[-1]``).
    """

    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum",
                 "min", "max")

    def __init__(self, name: str, buckets: tuple = DEFAULT_BUCKETS,
                 labels: LabelsKey = ()) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be non-empty and sorted: {buckets}")
        self.name = name
        self.labels = labels
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)   # + the +Inf bucket
        self.count = 0
        self.sum = 0
        self.min: int | None = None
        self.max: int | None = None

    def observe(self, v) -> None:
        self.counts[bisect_left(self.buckets, v)] += 1
        self.count += 1
        self.sum += v
        if self.min is None or v < self.min:
            self.min = v
        if self.max is None or v > self.max:
            self.max = v

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float | None:
        """Nearest-rank percentile estimate from the bucket counts.

        ``q`` is a quantile in ``[0, 1]`` (``0.99`` = p99).  The estimate
        is the upper bound of the bucket holding the target rank, clamped
        to the observed ``[min, max]`` — so a single-sample histogram
        returns exactly that sample, and a rank landing in the ``+Inf``
        overflow bucket returns ``max`` (the histogram cannot resolve
        beyond its last bound).  An empty histogram returns ``None``
        rather than raising; an out-of-range ``q`` raises ``ValueError``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if self.count == 0:
            return None
        assert self.min is not None and self.max is not None
        if q == 0.0:
            return float(self.min)
        rank = max(1, -(-q * self.count // 1))      # ceil(q * count)
        cum = 0
        for bound, n in zip(self.buckets, self.counts):
            cum += n
            if cum >= rank:
                return float(min(max(bound, self.min), self.max))
        return float(self.max)      # rank fell in the +Inf overflow bucket

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Histogram {self.name}{_labels_str(self.labels)} "
                f"n={self.count} mean={self.mean:.1f}>")


class MetricsRegistry:
    """Get-or-create store of named (and optionally labelled) metrics.

    Fetch a handle once (``c = m.counter("kernel.vm_switches")``) and hold
    it on the hot path; fetching again with the same name+labels returns
    the same object, so occasional re-lookup is safe too.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple[str, LabelsKey], Counter] = {}
        self._gauges: dict[tuple[str, LabelsKey], Gauge] = {}
        self._histograms: dict[tuple[str, LabelsKey], Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = (name, _labels_key(labels))
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, key[1])
        return c

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = (name, _labels_key(labels))
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, key[1])
        return g

    def histogram(self, name: str, buckets: tuple = DEFAULT_BUCKETS,
                  **labels: Any) -> Histogram:
        key = (name, _labels_key(labels))
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, buckets, key[1])
        return h

    # -- introspection / export ---------------------------------------------

    def total(self, name: str) -> int:
        """Sum a counter across every label set (0 if never registered)."""
        return sum(c.value for (n, _), c in self._counters.items()
                   if n == name)

    def counters(self) -> list[Counter]:
        return [self._counters[k] for k in sorted(self._counters, key=str)]

    def gauges(self) -> list[Gauge]:
        return [self._gauges[k] for k in sorted(self._gauges, key=str)]

    def histograms(self) -> list[Histogram]:
        return [self._histograms[k] for k in sorted(self._histograms, key=str)]

    def as_dict(self) -> dict[str, Any]:
        """Flat snapshot (counter/gauge values, histogram summaries) for
        tests and JSON dumps."""
        out: dict[str, Any] = {}
        for c in self.counters():
            out[c.name + _labels_str(c.labels)] = c.value
        for g in self.gauges():
            out[g.name + _labels_str(g.labels)] = g.value
        for h in self.histograms():
            out[h.name + _labels_str(h.labels)] = {
                "count": h.count, "sum": h.sum, "min": h.min, "max": h.max,
            }
        return out

    def render(self) -> str:
        """Plain-text dump (the CLI's ``--metrics`` output)."""
        lines: list[str] = ["=== metrics ==="]
        for c in self.counters():
            lines.append(f"counter   {c.name}{_labels_str(c.labels)} "
                         f"= {c.value}")
        for g in self.gauges():
            lines.append(f"gauge     {g.name}{_labels_str(g.labels)} "
                         f"= {g.value}")
        for h in self.histograms():
            lines.append(
                f"histogram {h.name}{_labels_str(h.labels)} "
                f"count={h.count} sum={h.sum} min={h.min} max={h.max} "
                f"mean={h.mean:.1f}")
            if h.count:
                for bound, n in zip(h.buckets, h.counts):
                    if n:
                        lines.append(f"    le={bound}: {n}")
                if h.counts[-1]:
                    lines.append(f"    le=+Inf: {h.counts[-1]}")
        return "\n".join(lines)
