"""Streaming telemetry bus: schema-versioned JSONL over the metrics plane.

A :class:`TelemetryStream` watches a :class:`~repro.obs.metrics.MetricsRegistry`
and, every ``interval_cycles`` of *simulated* time, emits one ``delta``
record — the sparse difference (counter increments, histogram bucket
deltas, gauge samples) since the previous emission — to a JSONL sink
and/or in-process subscribers (the SLO engine rides the bus this way).

Cycle neutrality is the load-bearing property: the stream **never
schedules engine events**.  It registers as an observational tap
(:meth:`~repro.sim.engine.Simulator.attach_stream`) that the dispatcher
consults after firing due events — so the event queue, the idle
fast-forward jump targets, the ``sim.*`` counters and every cycle-exact
series are bit-identical with streaming on or off.  Streaming costs host
wall-clock only; emission boundaries are crossed at deterministic points
of the run, so the JSONL output is byte-identical across same-seed runs.

Wire schema (docs/OBSERVABILITY.md §10): one JSON object per line,
``sort_keys`` canonical form, every record carrying ``type``, ``t``
(sim cycle) and ``seq``.  Record types: ``header`` (schema version,
cadence, seed, full start snapshot), ``delta``, ``snapshot`` (full final
image), ``shard`` / ``aggregate`` (per-run images and their merged fleet
view, emitted by the soak harness), ``slo_breach`` (from
:mod:`repro.obs.slo`) and ``end``.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from .aggregate import MetricSnapshot, delta_between

#: Bump when the JSONL record layout changes.
STREAM_SCHEMA_VERSION = 1

#: Default emission cadence for the CLI, in simulated milliseconds.
DEFAULT_INTERVAL_MS = 10.0


class TelemetryStream:
    """Periodic metric-delta emitter + record bus.

    ``metrics`` may be ``None`` for a pure record bus (the soak harness
    uses one to carry per-run shard snapshots without a live registry).
    """

    def __init__(self, metrics=None, *, interval_cycles: int = 1,
                 sink=None, source: str = "run",
                 seed: int | None = None,
                 meta: dict[str, Any] | None = None) -> None:
        if interval_cycles <= 0:
            raise ValueError(f"interval_cycles must be > 0: {interval_cycles}")
        self.metrics = metrics
        self.interval = int(interval_cycles)
        self.source = source
        self.seed = seed
        self.meta = dict(meta or {})
        self._sink = sink
        self._subscribers: list[Callable[[dict[str, Any]], None]] = []
        self._sim = None
        self._prev = MetricSnapshot.empty()
        #: Next emission boundary (absolute cycle); the engine compares
        #: its clock against this — cheap enough for the dispatch path.
        self.next_due = self.interval
        self.seq = 0
        self.records = 0
        self.deltas = 0
        self.closed = False
        if metrics is not None:
            self._c_records = metrics.counter("stream.records")
            self._c_deltas = metrics.counter("stream.deltas")
        else:
            self._c_records = self._c_deltas = None

    # -- bus plumbing -------------------------------------------------------

    def subscribe(self, fn: Callable[[dict[str, Any]], None]) -> None:
        """Receive every record as a dict, in emission order."""
        self._subscribers.append(fn)

    def _now(self) -> int:
        return self._sim.now if self._sim is not None else 0

    def _emit(self, rtype: str, fields: dict[str, Any]) -> dict[str, Any]:
        rec = {"type": rtype, "t": self._now(), "seq": self.seq, **fields}
        self.seq += 1
        self.records += 1
        if self._c_records is not None:
            self._c_records.inc()
        if self._sink is not None:
            self._sink.write(json.dumps(rec, sort_keys=True,
                                        separators=(",", ":")) + "\n")
        for fn in self._subscribers:
            fn(rec)
        return rec

    # -- lifecycle ----------------------------------------------------------

    def attach(self, sim) -> None:
        """Start streaming against an engine clock (emits the header).

        The header carries the full registry snapshot at attach time, so
        folding it with every subsequent delta reproduces the final
        snapshot exactly (:func:`repro.obs.aggregate.apply_delta`).
        """
        if self._sim is not None:
            raise ValueError("stream already attached")
        self._sim = sim
        self.next_due = sim.now + self.interval
        if self.metrics is not None:
            self._prev = MetricSnapshot.of(self.metrics)
        self._emit("header", {
            "schema_version": STREAM_SCHEMA_VERSION,
            "interval_cycles": self.interval,
            "source": self.source,
            "seed": self.seed,
            "meta": self.meta,
            "snapshot": self._prev.to_dict(),
        })
        sim.attach_stream(self)

    def on_tick(self, now: int) -> None:
        """Engine callback: the clock crossed ``next_due``.

        Emits at most one delta per crossing; an idle fast-forward that
        jumps several boundaries coalesces into a single delta (nothing
        changed in between — the engine was idle).
        """
        while self.next_due <= now:
            self.next_due += self.interval
        if self.metrics is None:
            return
        cur = MetricSnapshot.of(self.metrics)
        body = delta_between(self._prev, cur)
        self._prev = cur
        if not body:
            return                      # quiet interval: no record
        self.deltas += 1
        if self._c_deltas is not None:
            self._c_deltas.inc()
        self._emit("delta", body)

    # -- harness records ----------------------------------------------------

    def emit_shard(self, label: str, snapshot: MetricSnapshot,
                   **info: Any) -> None:
        """One fleet shard's final registry image (soak / fleet runs)."""
        self._emit("shard", {"label": label, "info": info,
                             "snapshot": snapshot.to_dict()})

    def emit_aggregate(self, snapshot: MetricSnapshot, *,
                       shards: int, **info: Any) -> None:
        """The merged fleet view of every shard emitted so far."""
        self._emit("aggregate", {"shards": shards, "info": info,
                                 "snapshot": snapshot.to_dict()})

    def emit_explore_schedule(self, schedule_id: str, *, sites: list[str],
                              fired: list[str], paths: list[str],
                              novel: bool, ok: bool, **info: Any) -> None:
        """One executed explorer schedule: which sites fired, which
        recovery paths the run's coverage fingerprint contains."""
        self._emit("explore_schedule",
                   {"schedule_id": schedule_id, "sites": sites,
                    "fired": fired, "paths": paths, "novel": novel,
                    "ok": ok, "info": info})

    def emit_overload_transition(self, kind: str, *, tick: int,
                                 **info: Any) -> None:
        """One overload-plane state change: a tenant degrade/restore/
        overload_kill, a breaker open/half_open/close, or a brownout
        enter/exit (docs/FLEET.md §11)."""
        self._emit("overload_transition",
                   {"kind": kind, "tick": tick, "info": info})

    def emit_overload_summary(self, *, admitted: int, dropped: int,
                              goodput: int, **info: Any) -> None:
        """End-of-run overload accounting: admission totals plus
        whatever the harness adds (drops by reason, breaker counts)."""
        self._emit("overload_summary",
                   {"admitted": admitted, "dropped": dropped,
                    "goodput": goodput, "info": info})

    def emit_explore_failure(self, schedule_id: str, *, reasons: list[str],
                             shrunk_to: int, replayed_identical: bool,
                             **info: Any) -> None:
        """A failing explorer schedule and its shrunk minimal repro."""
        self._emit("explore_failure",
                   {"schedule_id": schedule_id, "reasons": reasons,
                    "shrunk_to": shrunk_to,
                    "replayed_identical": replayed_identical,
                    "info": info})

    def close(self) -> None:
        """Flush the final delta, full snapshot, and the ``end`` record."""
        if self.closed:
            return
        self.closed = True
        if self.metrics is not None:
            cur = MetricSnapshot.of(self.metrics)
            body = delta_between(self._prev, cur)
            self._prev = cur
            if body:
                self.deltas += 1
                if self._c_deltas is not None:
                    self._c_deltas.inc()
                self._emit("delta", body)
            self._emit("snapshot", {"snapshot": cur.to_dict()})
        # +1 so the count includes the end record itself: "records" ==
        # the line count of the finished JSONL file.
        self._emit("end", {"records": self.records + 1,
                           "deltas": self.deltas})
        if self._sim is not None:
            self._sim.detach_stream(self)
            self._sim = None
