"""Exporters: Chrome trace-event JSON and plain-text metrics dumps.

``write_chrome_trace`` converts a :class:`~repro.obs.trace.Tracer`'s ring
into the Trace Event Format understood by ``chrome://tracing`` and
Perfetto (https://ui.perfetto.dev): span pairs (``<name>_start`` /
``<name>_end``) become complete ``"X"`` duration events, everything else
becomes an ``"i"`` instant event.  Timestamps are converted from CPU
cycles to microseconds; events are grouped into tracks by VM id
(``tid``) so one row per guest plus a kernel row appears in the viewer.

Span pairing uses the per-span keys documented in docs/OBSERVABILITY.md
(``SPAN_KEYS``); spans without a listed key pair LIFO per name, which is
correct for strictly nested spans.
"""

from __future__ import annotations

import json
from typing import Any

from ..common.units import CPU_HZ_DEFAULT, cycles_to_us
from .metrics import MetricsRegistry
from .trace import SPAN_END_SUFFIX, SPAN_START_SUFFIX, TraceEvent, Tracer

#: info key that distinguishes concurrent instances of each span (see the
#: span-pairing table in docs/OBSERVABILITY.md).
SPAN_KEYS: dict[str, str] = {
    "mgr_exec": "vm",
    "plirq_route": "seq",
    "plirq_inject": "seq",
    "pcap_xfer": "prr",
}

_PID = 1  # one simulated machine per trace


def _tid(e: TraceEvent) -> int:
    """Track id: the event's VM when it names one, else 0 (the kernel)."""
    vm = e.info.get("vm")
    return vm if isinstance(vm, int) else 0


def chrome_trace_events(tracer: Tracer,
                        hz: int = CPU_HZ_DEFAULT) -> list[dict[str, Any]]:
    """Convert the tracer's retained events into trace-event dicts,
    sorted by ascending ``ts``."""
    out: list[dict[str, Any]] = []
    open_: dict[tuple[str, Any], list[TraceEvent]] = {}

    for e in tracer.events:
        if e.name.endswith(SPAN_START_SUFFIX):
            base = e.name[: -len(SPAN_START_SUFFIX)]
            key = e.info.get(SPAN_KEYS.get(base, ""), None)
            open_.setdefault((base, key), []).append(e)
        elif e.name.endswith(SPAN_END_SUFFIX):
            base = e.name[: -len(SPAN_END_SUFFIX)]
            key = e.info.get(SPAN_KEYS.get(base, ""), None)
            stack = open_.get((base, key))
            if stack:
                s = stack.pop()
                out.append({
                    "name": base, "cat": s.cat or "misc", "ph": "X",
                    "ts": cycles_to_us(s.t, hz),
                    "dur": cycles_to_us(e.t - s.t, hz),
                    "pid": _PID, "tid": _tid(e),
                    "args": {**s.info, **e.info},
                })
            else:   # unmatched end: keep it visible as an instant
                out.append(_instant(e, hz))
        else:
            out.append(_instant(e, hz))

    # Unmatched starts (span still open when the run stopped).
    for stack in open_.values():
        for s in stack:
            out.append(_instant(s, hz))
    out.sort(key=lambda d: d["ts"])
    return out


def _instant(e: TraceEvent, hz: int) -> dict[str, Any]:
    return {
        "name": e.name, "cat": e.cat or "misc", "ph": "i", "s": "t",
        "ts": cycles_to_us(e.t, hz), "pid": _PID, "tid": _tid(e),
        "args": dict(e.info),
    }


def chrome_trace_json(tracer: Tracer, hz: int = CPU_HZ_DEFAULT) -> str:
    """The full Chrome trace JSON document as a string."""
    doc = {
        "traceEvents": chrome_trace_events(tracer, hz),
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro (Mini-NOVA reproduction)",
            "clock": f"{hz} Hz CPU cycles",
            "dropped_events": tracer.dropped,
        },
    }
    return json.dumps(doc, indent=1)


def write_chrome_trace(tracer: Tracer, path: str,
                       hz: int = CPU_HZ_DEFAULT) -> int:
    """Write the trace to ``path``; returns the number of trace events."""
    doc = chrome_trace_json(tracer, hz)
    with open(path, "w", encoding="utf-8") as f:
        f.write(doc)
    return len(json.loads(doc)["traceEvents"])


def render_metrics(metrics: MetricsRegistry) -> str:
    """Plain-text metrics dump (counters, gauges, histograms)."""
    return metrics.render()
