"""Kernel observability layer: structured tracing, metrics, exporters.

The measurement substrate everything in ``eval/`` (Table III, Fig. 9) and
the CLI's ``--trace-out``/``--metrics`` flags are built on:

* :mod:`repro.obs.trace`   — the bounded-ring :class:`Tracer` with
  name-indexed lookup, span context managers and per-event categories;
* :mod:`repro.obs.metrics` — the always-on :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms;
* :mod:`repro.obs.export`  — Chrome trace-event JSON (``chrome://tracing``
  / Perfetto) and plain-text metrics exporters;
* :mod:`repro.obs.analytics`  — percentile summaries (p50/p90/p99) over
  histograms and trace-span samples, DPR critical-path chains;
* :mod:`repro.obs.accounting` — per-VM cycle attribution (kernel /
  guest-kernel / guest-user / idle), event tallies, PRR occupancy;
* :mod:`repro.obs.aggregate`  — mergeable :class:`MetricSnapshot` with an
  exact K-way merge law (the fleet-aggregation substrate);
* :mod:`repro.obs.stream`     — the schema-versioned JSONL telemetry bus
  emitting deterministic metric deltas at a sim-cycle cadence;
* :mod:`repro.obs.slo`        — declarative windowed SLOs (p99 ceilings,
  rate floors, error-budget burn) evaluated on the stream;
* :mod:`repro.obs.flight`     — the flight recorder dumping deterministic
  post-mortem bundles on invariant violations and crashes.

The event names the kernel emits are a documented contract, not an
accident: see ``docs/OBSERVABILITY.md`` for the full catalog, the span
pairing rules and the ring-buffer semantics.  ``tools/check_event_catalog.py``
keeps code and catalog in sync.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    CATEGORIES,
    DEFAULT_RING_CAPACITY,
    EventRing,
    TraceEvent,
    Tracer,
)
from .export import (
    chrome_trace_events,
    render_metrics,
    write_chrome_trace,
)
from .analytics import (
    DprChain,
    SeriesSummary,
    dpr_chains,
    dpr_stage_summaries,
    percentile_of_samples,
    plirq_latency_samples,
    summarize,
)
from .accounting import VmAccount, VmAccounting
from .aggregate import (
    HistState,
    MetricSnapshot,
    SNAPSHOT_SCHEMA_VERSION,
    apply_delta,
    delta_between,
    merge_all,
)
from .stream import DEFAULT_INTERVAL_MS, STREAM_SCHEMA_VERSION, TelemetryStream
from .slo import (
    EXIT_SLO_BREACH,
    SloEngine,
    SloRule,
    load_slo_config,
    parse_slo_config,
)
from .flight import (
    FLIGHT_SCHEMA_VERSION,
    FlightRecorder,
    load_bundle,
    maybe_dump,
    render_bundle,
    validate_bundle,
    write_bundle,
)

__all__ = [
    "CATEGORIES", "Counter", "DEFAULT_INTERVAL_MS", "DEFAULT_RING_CAPACITY",
    "DprChain", "EXIT_SLO_BREACH", "EventRing", "FLIGHT_SCHEMA_VERSION",
    "FlightRecorder", "Gauge", "HistState", "Histogram", "MetricSnapshot",
    "MetricsRegistry", "SNAPSHOT_SCHEMA_VERSION", "STREAM_SCHEMA_VERSION",
    "SeriesSummary", "SloEngine", "SloRule", "TelemetryStream", "TraceEvent",
    "Tracer", "VmAccount", "VmAccounting", "apply_delta",
    "chrome_trace_events", "delta_between", "dpr_chains",
    "dpr_stage_summaries", "load_bundle", "load_slo_config", "maybe_dump",
    "merge_all", "parse_slo_config", "percentile_of_samples",
    "plirq_latency_samples", "render_bundle", "render_metrics", "summarize",
    "validate_bundle", "write_bundle", "write_chrome_trace",
]
