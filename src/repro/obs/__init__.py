"""Kernel observability layer: structured tracing, metrics, exporters.

The measurement substrate everything in ``eval/`` (Table III, Fig. 9) and
the CLI's ``--trace-out``/``--metrics`` flags are built on:

* :mod:`repro.obs.trace`   — the bounded-ring :class:`Tracer` with
  name-indexed lookup, span context managers and per-event categories;
* :mod:`repro.obs.metrics` — the always-on :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket histograms;
* :mod:`repro.obs.export`  — Chrome trace-event JSON (``chrome://tracing``
  / Perfetto) and plain-text metrics exporters;
* :mod:`repro.obs.analytics`  — percentile summaries (p50/p90/p99) over
  histograms and trace-span samples, DPR critical-path chains;
* :mod:`repro.obs.accounting` — per-VM cycle attribution (kernel /
  guest-kernel / guest-user / idle), event tallies, PRR occupancy.

The event names the kernel emits are a documented contract, not an
accident: see ``docs/OBSERVABILITY.md`` for the full catalog, the span
pairing rules and the ring-buffer semantics.  ``tools/check_event_catalog.py``
keeps code and catalog in sync.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    CATEGORIES,
    DEFAULT_RING_CAPACITY,
    EventRing,
    TraceEvent,
    Tracer,
)
from .export import (
    chrome_trace_events,
    render_metrics,
    write_chrome_trace,
)
from .analytics import (
    DprChain,
    SeriesSummary,
    dpr_chains,
    dpr_stage_summaries,
    percentile_of_samples,
    plirq_latency_samples,
    summarize,
)
from .accounting import VmAccount, VmAccounting

__all__ = [
    "CATEGORIES", "Counter", "DEFAULT_RING_CAPACITY", "DprChain",
    "EventRing", "Gauge", "Histogram", "MetricsRegistry", "SeriesSummary",
    "TraceEvent", "Tracer", "VmAccount", "VmAccounting",
    "chrome_trace_events", "dpr_chains", "dpr_stage_summaries",
    "percentile_of_samples", "plirq_latency_samples", "render_metrics",
    "summarize", "write_chrome_trace",
]
