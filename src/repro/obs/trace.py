"""Structured kernel tracing: the measurement substrate for Table III / Fig. 9.

The kernel marks named events with the current cycle count; the eval layer
pairs them into intervals (HW-Manager entry/exit, PL-IRQ entry, ...) and
the exporters turn them into Chrome trace-event JSON.  Compared with the
original unbounded event list this tracer adds:

* a **bounded ring buffer** (:class:`EventRing`) — long runs cannot grow
  memory without limit; overflow drops the *oldest* events and counts them
  in :attr:`EventRing.dropped`;
* an **O(1) name index** — :meth:`Tracer.find` / :meth:`Tracer.count` walk
  only the events of the requested name instead of the whole buffer;
* **span context managers** — ``with tracer.span("mgr_exec", vm=1):``
  emits the paired ``mgr_exec_start`` / ``mgr_exec_end`` events the eval
  protocol is written in terms of;
* **per-event categories** (``sched``, ``vgic``, ``hypercall``, ``hwmgr``,
  ``pcap``, ``sim``, ``fault``) so exporters and queries can slice by
  subsystem;
* **nesting-safe interval pairing** — :meth:`Tracer.intervals` keeps a
  *stack* per key, so nested same-key spans pair inside-out instead of the
  outer start being silently overwritten (a bug in the original tracer);
* **span chains** — :meth:`Tracer.chains` pairs multi-stage lifecycles
  (trap -> exec-start -> exec-end -> resumed) in one pass.

Every event name the kernel guarantees to emit is documented in
``docs/OBSERVABILITY.md``; treat that catalog as the API.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Sequence

#: Recognized event categories (see docs/OBSERVABILITY.md).
CATEGORIES = ("sched", "vgic", "hypercall", "hwmgr", "pcap", "sim", "fault",
              "misc")

#: Default ring capacity: generous for every bundled scenario (a full
#: Table III sweep emits well under this many events) while bounding a
#: pathological run to ~100 MB of event objects.
DEFAULT_RING_CAPACITY = 1 << 20

#: Span events are named ``<span>_start`` / ``<span>_end`` — the naming
#: convention the pre-existing eval protocol already used.
SPAN_START_SUFFIX = "_start"
SPAN_END_SUFFIX = "_end"


@dataclass
class TraceEvent:
    """One trace record: cycle timestamp, name, info dict, category."""

    t: int
    name: str
    info: dict[str, Any]
    cat: str = "misc"


class EventRing:
    """Bounded FIFO of :class:`TraceEvent` with a per-name index.

    Appending beyond ``capacity`` evicts the oldest event (and its index
    entry) and increments :attr:`dropped`.  Iteration yields events oldest
    first; equality against plain lists is supported so existing tests and
    notebooks that compare ``tracer.events == [...]`` keep working.
    """

    __slots__ = ("capacity", "dropped", "_q", "_by_name")

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"ring capacity must be positive ({capacity})")
        self.capacity = capacity
        self.dropped = 0
        self._q: deque[TraceEvent] = deque()
        self._by_name: dict[str, deque[TraceEvent]] = {}

    def append(self, e: TraceEvent) -> None:
        if len(self._q) >= self.capacity:
            old = self._q.popleft()
            self.dropped += 1
            bucket = self._by_name.get(old.name)
            if bucket:
                # The evicted event is by construction the oldest of its
                # name, so the index stays consistent with one popleft.
                bucket.popleft()
                if not bucket:
                    del self._by_name[old.name]
        self._q.append(e)
        self._by_name.setdefault(e.name, deque()).append(e)

    def by_name(self, name: str) -> Sequence[TraceEvent]:
        """All retained events called ``name``, oldest first (O(1) lookup)."""
        return tuple(self._by_name.get(name, ()))

    def names(self) -> set[str]:
        """The distinct event names currently retained."""
        return set(self._by_name)

    def clear(self) -> None:
        self._q.clear()
        self._by_name.clear()
        self.dropped = 0

    # -- container protocol -------------------------------------------------

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._q)

    def __len__(self) -> int:
        return len(self._q)

    def __getitem__(self, i):
        if isinstance(i, slice):
            return list(self._q)[i]
        return self._q[i]

    def __bool__(self) -> bool:
        return bool(self._q)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EventRing):
            return list(self._q) == list(other._q)
        if isinstance(other, (list, tuple)):
            return list(self._q) == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<EventRing {len(self._q)}/{self.capacity} events, "
                f"{self.dropped} dropped>")


class _Span:
    """Context manager emitting ``<name>_start`` / ``<name>_end`` marks."""

    __slots__ = ("_tracer", "_name", "_cat", "_info")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 info: dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._cat = cat
        self._info = info

    def __enter__(self) -> "_Span":
        self._tracer.mark(self._name + SPAN_START_SUFFIX, cat=self._cat,
                          **self._info)
        return self

    def __exit__(self, *exc) -> None:
        self._tracer.mark(self._name + SPAN_END_SUFFIX, cat=self._cat,
                          **self._info)


class _NoopSpan:
    """Zero-cost stand-in returned when tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Bounded, name-indexed event tracer bound to a cycle clock.

    ``enabled=False`` turns every probe into a no-op; ``verbose`` gates the
    high-rate events (per-hypercall, per-vIRQ-injection — see the Level
    column in docs/OBSERVABILITY.md) that would otherwise dominate the
    ring on long runs.
    """

    def __init__(self, enabled: bool = True,
                 capacity: int = DEFAULT_RING_CAPACITY,
                 verbose: bool = False) -> None:
        self.enabled = enabled
        self.verbose = verbose
        self.events = EventRing(capacity)
        self._clock_ref: Any = None   # object with .now (set by the kernel)

    def bind(self, clock_like: Any) -> None:
        """Attach the clock the timestamps are read from (kernel boot)."""
        self._clock_ref = clock_like

    # -- recording ----------------------------------------------------------

    def mark(self, name: str, *, cat: str = "misc", **info: Any) -> None:
        """Record an instant event at the current cycle."""
        if self.enabled and self._clock_ref is not None:
            self.events.append(TraceEvent(self._clock_ref.now, name, info, cat))

    def mark_at(self, t: int, name: str, *, cat: str = "misc",
                **info: Any) -> None:
        """Record an event with an explicit timestamp (e.g. the PL-IRQ
        exception-vector time captured before routing work began)."""
        if self.enabled:
            self.events.append(TraceEvent(t, name, info, cat))

    def span(self, name: str, *, cat: str = "misc", **info: Any):
        """Context manager emitting ``<name>_start``/``<name>_end`` marks
        around its body — the span pairing the eval layer consumes."""
        if not (self.enabled and self._clock_ref is not None):
            return _NOOP_SPAN
        return _Span(self, name, cat, info)

    def clear(self) -> None:
        self.events.clear()

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow since the last :meth:`clear`."""
        return self.events.dropped

    # -- queries -------------------------------------------------------------

    def find(self, name: str, **match: Any) -> list[TraceEvent]:
        """Events called ``name`` whose info matches ``match`` (name lookup
        is O(1); only same-name events are scanned)."""
        out = []
        for e in self.events.by_name(name):
            if all(e.info.get(k) == v for k, v in match.items()):
                out.append(e)
        return out

    def count(self, name: str) -> int:
        """Number of retained events called ``name`` (O(1) name lookup)."""
        return len(self.events.by_name(name))

    def names(self) -> set[str]:
        """Distinct event names currently retained in the ring."""
        return self.events.names()

    def intervals(self, start_name: str, end_name: str,
                  key: str | None = None) -> list[tuple[int, TraceEvent, TraceEvent]]:
        """Pair start/end events in order; when ``key`` is given, events
        pair only when their ``info[key]`` matches.  Nested same-key spans
        pair inside-out (a stack per key — the original tracer silently
        dropped the outer start).  Returns (duration, start_event,
        end_event) triples in end-event order."""
        open_: dict[Any, list[TraceEvent]] = {}
        out: list[tuple[int, TraceEvent, TraceEvent]] = []
        for e in self.events:
            if e.name == start_name:
                open_.setdefault(e.info.get(key) if key else None, []).append(e)
            elif e.name == end_name:
                stack = open_.get(e.info.get(key) if key else None)
                if stack:
                    s = stack.pop()
                    out.append((e.t - s.t, s, e))
        return out

    def spans(self, name: str,
              key: str | None = None) -> list[tuple[int, TraceEvent, TraceEvent]]:
        """Intervals of the ``<name>_start``/``<name>_end`` span pair."""
        return self.intervals(name + SPAN_START_SUFFIX,
                              name + SPAN_END_SUFFIX, key=key)

    def chains(self, names: Iterable[str], key: str | None = None,
               first_match: dict[str, Any] | None = None
               ) -> list[tuple[TraceEvent, ...]]:
        """Pair multi-stage lifecycles: a chain completes when the events
        in ``names`` occur in order for one value of ``info[key]``.

        A fresh stage-0 event restarts its key's chain (latest wins);
        incomplete chains at the end of the trace are discarded.
        ``first_match`` filters which stage-0 events may open a chain
        (e.g. only ``hwreq_trap`` events with ``hc == HWTASK_REQUEST``).
        """
        names = tuple(names)
        stage_of = {n: i for i, n in enumerate(names)}
        open_: dict[Any, list[TraceEvent]] = {}
        out: list[tuple[TraceEvent, ...]] = []
        for e in self.events:
            stage = stage_of.get(e.name)
            if stage is None:
                continue
            k = e.info.get(key) if key else None
            if stage == 0:
                if first_match and any(e.info.get(mk) != mv
                                       for mk, mv in first_match.items()):
                    open_.pop(k, None)
                    continue
                open_[k] = [e]
            else:
                chain = open_.get(k)
                if chain is not None and len(chain) == stage:
                    chain.append(e)
                    if stage == len(names) - 1:
                        out.append(tuple(chain))
                        del open_[k]
        return out
