"""Crash recovery for the Hardware Task Manager (docs/RECOVERY.md).

Entered by the :class:`~repro.kernel.supervisor.ManagerSupervisor` right
after it respawned the manager PD.  The fresh service instance starts
with empty tables; this module brings it back in sync by

1. **replaying the intent journal** — open ``allocate`` entries are
   rolled back (the allocation may be half-applied; an in-flight
   reconfiguration is cancelled and the region force-reclaimed), open
   ``release``/``reclaim`` entries are replayed through the normal code
   paths (idempotent; :meth:`IntentJournal.reuse_or_begin` reuses the
   predecessor's entry so the journal stays balanced);

2. **reconciling against ground truth** — regions the PRR controller
   says are mid-reconfiguration with nobody driving them are aborted
   into ERR_RECONFIG, wedged-BUSY regions with no live completion or
   watchdog event are force-reclaimed, and register-group pages mapped
   into a VM that the controller does not list as the owner are demapped;

3. **rebuilding the manager tables** — PRR-table rows and the PL-IRQ
   line map are regenerated from the live :class:`~repro.fpga.prr.Prr`
   objects (the hardware's registers are the only trusted record).

Every step is idempotent, so a crash *during* recovery (not modelled —
crashpoints are suppressed while the supervisor runs) or a watchdog
racing the recovery pass converges to the same state.
"""

from __future__ import annotations

from ..fpga.prr import PrrStatus
from .journal import ACT, OP_ALLOCATE, OP_RECLAIM, OP_RELEASE

__all__ = ["recover"]


def recover(kernel, service) -> dict[str, int]:
    """Drive the freshly respawned ``service`` back to a consistent state.

    Returns a small dict of counts (rollbacks / replays / reconcile
    reclaims) for tests; the same numbers land in ``recovery.*`` metrics.
    """
    alloc = service.allocator
    journal = kernel.manager_journal
    machine = kernel.machine
    metrics = kernel.metrics
    tracer = kernel.tracer
    counts = {"rollbacks": 0, "replays": 0, "reconcile_reclaims": 0}

    # -- 1. journal pass ---------------------------------------------------
    for e in journal.open_entries():
        if e.op == OP_ALLOCATE:
            # Roll back: an allocation that never committed may be
            # half-applied (mapped but no hwMMU, reconfiguration in
            # flight, ...) — force the region back to the free pool.
            # A still-INTENT entry means nothing was acted on yet.
            if e.state == ACT and e.prr_id is not None:
                alloc.force_reclaim(e.prr_id, reason="recovery")
            journal.abort(e)
            journal.stats["rolled_back"] += 1
            counts["rollbacks"] += 1
            metrics.counter("recovery.journal_rollbacks").inc()
            tracer.mark("journal_rollback", cat="fault", op=e.op, seq=e.seq,
                        prr=e.prr_id if e.prr_id is not None else -1)
        elif e.op == OP_RELEASE:
            # Replay through the normal path; reuse_or_begin picks this
            # very entry back up and commits it.
            alloc.release(e.client_vm, e.task_id)
            journal.stats["replayed"] += 1
            counts["replays"] += 1
            metrics.counter("recovery.journal_replays").inc()
            tracer.mark("journal_replay", cat="fault", op=e.op, seq=e.seq,
                        prr=-1)
        elif e.op == OP_RECLAIM and e.prr_id is not None:
            alloc.force_reclaim(e.prr_id, reason="recovery")
            journal.stats["replayed"] += 1
            counts["replays"] += 1
            metrics.counter("recovery.journal_replays").inc()
            tracer.mark("journal_replay", cat="fault", op=e.op, seq=e.seq,
                        prr=e.prr_id)

    # -- 2. reconcile against hardware ground truth ------------------------
    ctl = machine.prr_controller
    for prr in machine.prrs:
        if prr.reconfiguring and not machine.pcap.busy:
            # The controller thinks a reconfiguration is running but the
            # PCAP port is idle: the driving context died between the
            # begin and the launch.  Abort it into ERR_RECONFIG.
            ctl.abort_reconfig(prr.prr_id)
            counts["reconcile_reclaims"] += 1
            metrics.counter("recovery.reconcile_reclaims").inc()
            tracer.mark("reconcile_reclaim", cat="fault", prr=prr.prr_id,
                        why="orphan_reconfig")
        if (prr.status == PrrStatus.BUSY
                and prr.prr_id not in ctl._pending
                and prr.prr_id not in ctl._watchdogs):
            # BUSY with neither a completion nor a watchdog event alive:
            # nothing will ever finish this region — reclaim it.
            alloc.force_reclaim(prr.prr_id, reason="recovery")
            counts["reconcile_reclaims"] += 1
            metrics.counter("recovery.reconcile_reclaims").inc()
            tracer.mark("reconcile_reclaim", cat="fault", prr=prr.prr_id,
                        why="wedged_busy")
    # Mapping exclusivity: a register-group page mapped into a VM the
    # controller does not list as the region's owner is stale — demap it.
    for vm_id, pd in kernel.domains.items():
        if pd is kernel.manager_pd:
            continue
        for prr_id in list(pd.prr_iface):
            if machine.prrs[prr_id].client_vm != vm_id:
                kernel.service_unmap_iface(pd, prr_id)
                counts["reconcile_reclaims"] += 1
                metrics.counter("recovery.reconcile_reclaims").inc()
                tracer.mark("reconcile_reclaim", cat="fault", prr=prr_id,
                            why="stale_mapping")

    # -- 3. rebuild the manager tables from the live PRRs ------------------
    for prr in machine.prrs:
        row = alloc.prr_table.row(prr.prr_id)
        row.client_vm = prr.client_vm
        row.task_name = prr.core.name if prr.core is not None else None
        row.busy = prr.status == PrrStatus.BUSY
    alloc.irq_lines = {prr.irq_line: prr.prr_id
                       for prr in machine.prrs if prr.irq_line is not None}
    return counts
