"""The Hardware Task Manager's two bookkeeping tables (Fig. 7).

* **Hardware task table** — indexed by unique task ID: bitstream address &
  size, reconfiguration latency, and the list of PRRs the task fits in.
* **PRR table** — per region: current client VM, implemented task, and
  execution state (idle/busy).

Both live in the manager's data area so lookups are *timed* through the
cache model (the paper attributes part of the execution-cost growth with
VM count to this bookkeeping getting colder).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.errors import DeviceError
from ..fpga.bitstream import Bitstream, BitstreamStore
from ..fpga.prr import Prr


@dataclass
class HwTaskEntry:
    task_id: int
    name: str
    bitstream: Bitstream
    prr_list: tuple[int, ...]          # PRRs big enough to host the task
    reconfig_cycles: int               # PCAP latency for this bitstream
    #: Physical address of this row (timed lookups touch it).
    row_addr: int = 0


@dataclass
class PrrRow:
    prr_id: int
    client_vm: int | None = None
    task_name: str | None = None
    #: Manager-visible state; the live truth is the PRR controller's.
    busy: bool = False
    #: Watchdog force-reclaims of this region (docs/FAULTS.md).
    hangs: int = 0
    #: Total force-reclaims (watchdog + crash-recovery; docs/RECOVERY.md).
    reclaims: int = 0
    row_addr: int = 0


class HardwareTaskTable:
    """task_id -> HwTaskEntry, plus name lookup."""

    def __init__(self) -> None:
        self._by_id: dict[int, HwTaskEntry] = {}
        self._by_name: dict[str, HwTaskEntry] = {}

    @classmethod
    def build(cls, store: BitstreamStore, prrs: list[Prr],
              pcap_cycles_of, row_base: int = 0) -> "HardwareTaskTable":
        """Derive the table from the installed bitstreams and floorplan.

        ``pcap_cycles_of(size)`` converts bitstream bytes to latency; rows
        get consecutive addresses starting at ``row_base`` (64 B apart).
        """
        table = cls()
        for i, name in enumerate(store.tasks()):
            core = store.core(name)
            fits = tuple(p.prr_id for p in prrs if core.resources.fits_in(p.capacity))
            if not fits:
                raise DeviceError(f"task {name} fits no PRR")
            bit = store.get(name)
            table.add(HwTaskEntry(
                task_id=i + 1, name=name, bitstream=bit, prr_list=fits,
                reconfig_cycles=pcap_cycles_of(bit.size),
                row_addr=row_base + i * 64))
        return table

    def add(self, entry: HwTaskEntry) -> None:
        if entry.task_id in self._by_id:
            raise DeviceError(f"duplicate task id {entry.task_id}")
        self._by_id[entry.task_id] = entry
        self._by_name[entry.name] = entry

    def by_id(self, task_id: int) -> HwTaskEntry | None:
        return self._by_id.get(task_id)

    def by_name(self, name: str) -> HwTaskEntry | None:
        return self._by_name.get(name)

    def ids(self) -> list[int]:
        return sorted(self._by_id)

    def __len__(self) -> int:
        return len(self._by_id)


class PrrTable:
    def __init__(self, prrs: list[Prr], row_base: int = 0) -> None:
        self.rows = [PrrRow(prr_id=p.prr_id, row_addr=row_base + p.prr_id * 64)
                     for p in prrs]

    def row(self, prr_id: int) -> PrrRow:
        return self.rows[prr_id]

    def rows_hosting(self, task_name: str) -> list[PrrRow]:
        return [r for r in self.rows if r.task_name == task_name]

    def rows_of_client(self, vm_id: int) -> list[PrrRow]:
        return [r for r in self.rows if r.client_vm == vm_id]
