"""Runtime invariant checker for the hardware-task subsystem.

Called by the supervisor after every manager restart (and freely from
tests / the soak harness): walks the PRR controller, the manager's
tables, the intent journal, guest page-table mappings and the kernel
mailbox, and returns a list of human-readable violation strings — empty
when the world is consistent.  docs/RECOVERY.md lists the invariants.
"""

from __future__ import annotations

from ..fpga.prr import PrrStatus
from .journal import OP_ALLOCATE

__all__ = ["assert_no_vm_leaks", "check_invariants",
           "check_lifecycle_invariants", "report_violations"]


def report_violations(kernel, violations, where: str) -> None:
    """Route invariant violations to the armed flight recorder, if any.

    Every checker caller (supervisor restart, soak harness, fault
    matrix) funnels violations through here so an armed recorder dumps
    its post-mortem bundle at the first sign of inconsistency.  The
    caller keeps its own counting/tracing — this is the incident hook
    only, and a no-op when nothing is armed or nothing is wrong.
    """
    if not violations:
        return
    flight = getattr(kernel, "flight", None)
    if flight is not None:
        flight.dump("invariant_violation", where=where,
                    violations=list(violations))


def check_invariants(kernel) -> list[str]:
    """Cross-check manager state against hardware ground truth."""
    v: list[str] = []
    machine = kernel.machine
    mgr = kernel.manager_pd
    service = mgr.runner if mgr is not None else None
    alloc = getattr(service, "allocator", None)
    journal = kernel.manager_journal
    if alloc is None or journal is None:
        return v

    # I1: PRR-table ownership agrees with the controller's registers.
    for prr in machine.prrs:
        row = alloc.prr_table.row(prr.prr_id)
        if row.client_vm != prr.client_vm:
            v.append(f"prr{prr.prr_id}: table client {row.client_vm} != "
                     f"controller client {prr.client_vm}")
        # I2: the implemented-task column matches the resident core —
        # except mid-operation (open journal entry) or mid-transfer.
        if not prr.reconfiguring and journal.entry_for_prr(prr.prr_id) is None:
            core_name = prr.core.name if prr.core is not None else None
            if row.task_name != core_name:
                v.append(f"prr{prr.prr_id}: table task {row.task_name!r} != "
                         f"resident core {core_name!r}")

    # I3: register-group exclusivity — each PRR interface page is mapped
    # in at most one VM, and only in the VM that owns the region.
    for prr in machine.prrs:
        mappers = [vm_id for vm_id, pd in kernel.domains.items()
                   if pd is not mgr and prr.prr_id in pd.prr_iface]
        if len(mappers) > 1:
            v.append(f"prr{prr.prr_id}: iface mapped in {len(mappers)} VMs "
                     f"({sorted(mappers)})")
        for vm_id in mappers:
            if vm_id != prr.client_vm:
                v.append(f"prr{prr.prr_id}: iface mapped in vm{vm_id} but "
                         f"owned by {prr.client_vm}")

    # I4: the PL-IRQ line map is a bijection with the controllers' lines.
    for line, prr_id in alloc.irq_lines.items():
        if machine.prrs[prr_id].irq_line != line:
            v.append(f"irq line {line}: allocator says prr{prr_id}, "
                     f"controller says {machine.prrs[prr_id].irq_line}")
    for prr in machine.prrs:
        if (prr.irq_line is not None
                and alloc.irq_lines.get(prr.irq_line) != prr.prr_id):
            v.append(f"prr{prr.prr_id}: line {prr.irq_line} missing from "
                     f"allocator irq map")

    # I5: open journal entries exist only for in-flight reconfigurations
    # (an allocate stays ACT until its PCAP transfer lands or aborts).
    for e in journal.open_entries():
        in_flight = (e.op == OP_ALLOCATE and e.reconfig
                     and e.prr_id is not None
                     and machine.prrs[e.prr_id].reconfiguring)
        if not in_flight:
            v.append(f"journal seq {e.seq}: open {e.op} entry "
                     f"(state {e.state}) with no in-flight reconfig")

    # I6: journal accounting balances (nothing lost or double-closed).
    if not journal.balanced():
        v.append(f"journal unbalanced: {journal.stats} with "
                 f"{len(journal.open_entries())} open")

    # I7: no lost requests — every guest parked in a HC_HWTASK_* hypercall
    # is queued, in flight, or already has its resume staged.
    for vm_id, pd in kernel.domains.items():
        if not pd.vcpu.vregs.get("_hwreq_wait"):
            continue
        queued = any(r.pd is pd for r in kernel.manager_queue)
        cur = getattr(service, "current_request", None)
        in_flight = cur is not None and cur.pd is pd
        staged = "_deferred_exit" in pd.vcpu.vregs
        if not (queued or in_flight or staged):
            v.append(f"vm{vm_id}: parked in hwreq but request is neither "
                     f"queued, in flight, nor completed")

    # I8: a BUSY region always has someone to finish it (completion or
    # watchdog event alive in the controller).
    ctl = machine.prr_controller
    for prr in machine.prrs:
        if (prr.status == PrrStatus.BUSY
                and prr.prr_id not in ctl._pending
                and prr.prr_id not in ctl._watchdogs):
            v.append(f"prr{prr.prr_id}: BUSY with no completion/watchdog "
                     f"event pending")
    return v


def check_lifecycle_invariants(kernel) -> list[str]:
    """VM-lifecycle invariants (docs/RECOVERY.md §9) — the no-leak side
    of kill/resurrect.  Robust to systems without a manager or without
    any lifecycle activity (native builds return no violations)."""
    from ..kernel.pd import PdState

    v: list[str] = []
    mgr = kernel.manager_pd
    service = mgr.runner if mgr is not None else None
    lc = getattr(kernel, "lifecycle", None)

    # Scope to *killed* epochs (kill_vm marks the vGIC dead).  A guest
    # that finishes voluntarily also ends DEAD but keeps its last state
    # — it was never torn down, so the no-leak rules don't apply to it.
    dead = {vm_id: pd for vm_id, pd in kernel.domains.items()
            if pd.state is PdState.DEAD and pd.vgic.dead and pd is not mgr}

    # L1: no PRR is still owned by a dead client unless its force-reclaim
    # is already queued/in flight (the kill path enqueues it).
    for prr in kernel.machine.prrs:
        if prr.client_vm not in dead:
            continue
        queued = any(r.kind in ("client_died", "watchdog")
                     and r.task_id == prr.prr_id
                     for r in kernel.manager_queue)
        cur = getattr(service, "current_request", None)
        in_flight = (cur is not None and cur.kind in ("client_died",
                                                      "watchdog")
                     and cur.task_id == prr.prr_id)
        if not (queued or in_flight):
            v.append(f"prr{prr.prr_id}: owned by dead vm{prr.client_vm} "
                     f"with no reclaim queued")

    for vm_id, pd in dead.items():
        # L2: a dead epoch holds no pending vIRQs (all dropped at kill).
        fifo = pd.vgic.pending_fifo()
        if fifo:
            v.append(f"vm{vm_id}: dead epoch has pending vIRQs {fifo}")
        # L3: a dead epoch maps no register-group pages.
        if pd.prr_iface:
            v.append(f"vm{vm_id}: dead epoch still maps PRR ifaces "
                     f"{sorted(pd.prr_iface)}")
        # L4: no guest-originated request from a dead epoch stays queued
        # (kernel-originated reclaims carry exit_=None and are fine).
        for r in kernel.manager_queue:
            if r.pd is pd and r.exit_ is not None:
                v.append(f"vm{vm_id}: dead epoch has a {r.kind!r} request "
                         f"still queued")

    # L5: lifecycle bookkeeping balances — every kill was resolved into a
    # halt, a completed restart, or a still-scheduled resurrection.
    if lc is not None:
        resolved = lc.halt_count + lc.restart_count + len(lc.pending)
        if lc.kills != resolved:
            v.append(f"lifecycle: {lc.kills} kills != {lc.halt_count} halts"
                     f" + {lc.restart_count} restarts + {len(lc.pending)}"
                     f" pending")

    # L6: every live domain is registered with the accountant (ledger
    # continuity across resurrection).
    acct = getattr(kernel, "acct", None)
    if acct is not None:
        for vm_id, pd in kernel.domains.items():
            if pd.state is not PdState.DEAD and vm_id not in acct.vms:
                v.append(f"vm{vm_id}: live domain missing from accounting")
    return v


def assert_no_vm_leaks(kernel) -> None:
    """Raise AssertionError listing every lifecycle-invariant violation;
    the tools-style leak check tests call after killing VMs."""
    v = check_lifecycle_invariants(kernel)
    if v:
        raise AssertionError("VM resource leaks: " + "; ".join(v))
