"""Runtime invariant checker for the hardware-task subsystem.

Called by the supervisor after every manager restart (and freely from
tests / the soak harness): walks the PRR controller, the manager's
tables, the intent journal, guest page-table mappings and the kernel
mailbox, and returns a list of human-readable violation strings — empty
when the world is consistent.  docs/RECOVERY.md lists the invariants.
"""

from __future__ import annotations

from ..fpga.prr import PrrStatus
from .journal import OP_ALLOCATE

__all__ = ["check_invariants"]


def check_invariants(kernel) -> list[str]:
    """Cross-check manager state against hardware ground truth."""
    v: list[str] = []
    machine = kernel.machine
    mgr = kernel.manager_pd
    service = mgr.runner if mgr is not None else None
    alloc = getattr(service, "allocator", None)
    journal = kernel.manager_journal
    if alloc is None or journal is None:
        return v

    # I1: PRR-table ownership agrees with the controller's registers.
    for prr in machine.prrs:
        row = alloc.prr_table.row(prr.prr_id)
        if row.client_vm != prr.client_vm:
            v.append(f"prr{prr.prr_id}: table client {row.client_vm} != "
                     f"controller client {prr.client_vm}")
        # I2: the implemented-task column matches the resident core —
        # except mid-operation (open journal entry) or mid-transfer.
        if not prr.reconfiguring and journal.entry_for_prr(prr.prr_id) is None:
            core_name = prr.core.name if prr.core is not None else None
            if row.task_name != core_name:
                v.append(f"prr{prr.prr_id}: table task {row.task_name!r} != "
                         f"resident core {core_name!r}")

    # I3: register-group exclusivity — each PRR interface page is mapped
    # in at most one VM, and only in the VM that owns the region.
    for prr in machine.prrs:
        mappers = [vm_id for vm_id, pd in kernel.domains.items()
                   if pd is not mgr and prr.prr_id in pd.prr_iface]
        if len(mappers) > 1:
            v.append(f"prr{prr.prr_id}: iface mapped in {len(mappers)} VMs "
                     f"({sorted(mappers)})")
        for vm_id in mappers:
            if vm_id != prr.client_vm:
                v.append(f"prr{prr.prr_id}: iface mapped in vm{vm_id} but "
                         f"owned by {prr.client_vm}")

    # I4: the PL-IRQ line map is a bijection with the controllers' lines.
    for line, prr_id in alloc.irq_lines.items():
        if machine.prrs[prr_id].irq_line != line:
            v.append(f"irq line {line}: allocator says prr{prr_id}, "
                     f"controller says {machine.prrs[prr_id].irq_line}")
    for prr in machine.prrs:
        if (prr.irq_line is not None
                and alloc.irq_lines.get(prr.irq_line) != prr.prr_id):
            v.append(f"prr{prr.prr_id}: line {prr.irq_line} missing from "
                     f"allocator irq map")

    # I5: open journal entries exist only for in-flight reconfigurations
    # (an allocate stays ACT until its PCAP transfer lands or aborts).
    for e in journal.open_entries():
        in_flight = (e.op == OP_ALLOCATE and e.reconfig
                     and e.prr_id is not None
                     and machine.prrs[e.prr_id].reconfiguring)
        if not in_flight:
            v.append(f"journal seq {e.seq}: open {e.op} entry "
                     f"(state {e.state}) with no in-flight reconfig")

    # I6: journal accounting balances (nothing lost or double-closed).
    if not journal.balanced():
        v.append(f"journal unbalanced: {journal.stats} with "
                 f"{len(journal.open_entries())} open")

    # I7: no lost requests — every guest parked in a HC_HWTASK_* hypercall
    # is queued, in flight, or already has its resume staged.
    for vm_id, pd in kernel.domains.items():
        if not pd.vcpu.vregs.get("_hwreq_wait"):
            continue
        queued = any(r.pd is pd for r in kernel.manager_queue)
        cur = getattr(service, "current_request", None)
        in_flight = cur is not None and cur.pd is pd
        staged = "_deferred_exit" in pd.vcpu.vregs
        if not (queued or in_flight or staged):
            v.append(f"vm{vm_id}: parked in hwreq but request is neither "
                     f"queued, in flight, nor completed")

    # I8: a BUSY region always has someone to finish it (completion or
    # watchdog event alive in the controller).
    ctl = machine.prr_controller
    for prr in machine.prrs:
        if (prr.status == PrrStatus.BUSY
                and prr.prr_id not in ctl._pending
                and prr.prr_id not in ctl._watchdogs):
            v.append(f"prr{prr.prr_id}: BUSY with no completion/watchdog "
                     f"event pending")
    return v
