"""The Hardware Task Manager as a Mini-NOVA user-level service (Section IV-E).

A suspended-by-default PD at service priority: every HC_HWTASK_* hypercall
enqueues a request and resumes it, so it preempts guests, drains its
mailbox through the shared :class:`~repro.hwmgr.alloc.Allocator`, posts
results, and parks itself again.  All its accesses run de-privileged in
its own address space — page-table and vGIC manipulation goes through the
kernel crossings (`service_*`), which is precisely the virtualization
overhead Table III measures.
"""

from __future__ import annotations

from ..common.errors import DeviceError, ServiceCrashed
from ..faults.plan import SERVICE_CRASH, SERVICE_HANG
from ..fpga.prr import (
    Prr,
    REG_DST,
    REG_IRQ_EN,
    REG_LEN,
    REG_OUTLEN,
    REG_SRC,
    REG_STATUS,
)
from ..kernel import layout as L
from ..kernel.exits import ExitHypercall, ExitIdle
from ..kernel.hypercalls import HcStatus
from .alloc import AllocRequest, Allocator
from .tables import HardwareTaskTable, PrrTable

_PAGE = 4096


class ManagerService:
    """DomainRunner + ManagerPort for the virtualized system."""

    def __init__(self, *, block_on_pcap: bool = False) -> None:
        self.kernel = None
        self.pd = None
        self.allocator: Allocator | None = None
        self.requests_handled = 0
        #: The request being handled right now (crash-recovery reads this
        #: off the dead instance to bounce the in-flight requester).
        self.current_request = None
        #: Ablation knob: wait for PCAP completion inside the request
        #: instead of returning the RECONFIG status (Section IV-E stage 6
        #: explicitly chooses *not* to do this, to overlap the latency).
        self.block_on_pcap = block_on_pcap

    # -- DomainRunner ------------------------------------------------------

    def bind(self, kernel, pd) -> None:
        self.kernel = kernel
        self.pd = pd
        machine = kernel.machine
        task_table = HardwareTaskTable.build(
            machine.bitstreams, machine.prrs,
            machine.pcap.transfer_cycles,
            row_base=L.MANAGER_DATA_VA + 0x1000)
        prr_table = PrrTable(machine.prrs, row_base=L.MANAGER_DATA_VA + 0x3000)
        self.allocator = Allocator(self, task_table, prr_table, machine.prrs,
                                   journal=kernel.manager_journal)

    def step(self, budget: int):
        kernel = self.kernel
        req = kernel.manager_take_request()
        if req is None:
            return ExitIdle()
        while req is not None:
            if self._consult_hang():
                # The service wedges without draining its mailbox: put the
                # request back and park.  The supervisor's per-request
                # deadline detects the stall and restarts the PD.
                kernel.manager_queue.insert(0, req)
                return ExitIdle()
            self.current_request = req
            self.crashpoint("pickup")
            exec_start = kernel.sim.now
            # The mgr_exec span (Table III "HW Manager execution").
            with kernel.tracer.span("mgr_exec", cat="hwmgr", vm=req.pd.vm_id):
                result = self._handle(req)
            kernel.metrics.counter("hwmgr.requests", kind=req.kind).inc()
            kernel.metrics.histogram("hwmgr.exec_cycles").observe(
                kernel.sim.now - exec_start)
            # Every request can change fabric ownership (allocate, reclaim,
            # release): reconcile the per-VM PRR occupancy intervals.
            kernel.acct.sync_prr_occupancy(kernel.machine.prrs)
            if kernel.brownout is not None:
                # Fabric/queue pressure may have moved — let the brownout
                # controller flip mode (docs/FLEET.md §11).
                kernel.brownout.observe(kernel)
            kernel.manager_post_result(req, result)
            self.current_request = None
            self.requests_handled += 1
            req = kernel.manager_take_request()
        return ExitIdle()

    def deliver_virq(self, irq_id: int) -> None:
        pass  # the manager takes no virtual interrupts

    def complete_hypercall(self, exit_: ExitHypercall) -> None:
        pass  # its kernel crossings are inlined, not exit-based

    # -- request handling -------------------------------------------------------

    def _handle(self, req):
        alloc = self.allocator
        assert alloc is not None
        if req.kind == "request":
            pd = req.pd
            data_va = req.data_va
            if not pd.hw_data.configured:
                return (HcStatus.ERR_STATE, None, None)
            if not (pd.hw_data.va <= data_va
                    and data_va < pd.hw_data.va + pd.hw_data.size):
                return (HcStatus.ERR_ARG, None, None)
            data_pa = pd.phys_base + data_va
            size = pd.hw_data.va + pd.hw_data.size - data_va
            r = alloc.allocate(AllocRequest(
                client_vm=pd.vm_id, task_id=req.task_id,
                iface_va=req.iface_va, data_pa=data_pa, data_size=size,
                want_irq=req.want_irq))
            return (r.status, r.prr_id, r.irq_id)
        if req.kind == "release":
            r = alloc.release(req.pd.vm_id, req.task_id)
            return (r.status, r.prr_id, None)
        if req.kind == "irq_attach":
            # Attach an IRQ to a PRR the client already holds.
            for row in alloc.prr_table.rows_of_client(req.pd.vm_id):
                prr = alloc.prrs[row.prr_id]
                irq = alloc._attach_irq(prr, req.pd.vm_id)
                if irq is not None:
                    return (HcStatus.SUCCESS, row.prr_id, irq)
            return (HcStatus.ERR_STATE, None, None)
        if req.kind == "watchdog":
            # Kernel-originated (no requester to resume): the controller's
            # watchdog flagged PRR ``task_id`` as hung — force-reclaim it.
            prr_id = req.task_id
            hung_since = alloc.prrs[prr_id].busy_since
            old = alloc.force_reclaim(prr_id)
            k = self.kernel
            k.metrics.counter("recovery.watchdog_reclaims").inc()
            k.metrics.histogram("recovery.latency_cycles").observe(
                k.sim.now - hung_since)
            k.tracer.mark("watchdog_reclaim", cat="fault", prr=prr_id,
                          vm=old if old is not None else 0)
            return (HcStatus.SUCCESS, prr_id, None)
        if req.kind == "client_died":
            # Kernel-originated on VM death: PRR ``task_id``'s client PD
            # was killed, so its fabric region must return to the free
            # pool.  Same consistency protocol as the watchdog path
            # (idempotent — a watchdog reclaim racing the kill is fine).
            prr_id = req.task_id
            old = alloc.force_reclaim(prr_id, reason="client_died")
            k = self.kernel
            k.metrics.counter("vm.lifecycle.client_reclaims").inc()
            k.tracer.mark("client_died_reclaim", cat="lifecycle", prr=prr_id,
                          vm=old if old is not None else 0)
            return (HcStatus.SUCCESS, prr_id, None)
        raise DeviceError(f"unknown manager request kind {req.kind!r}")

    # -- fault-site consults (untimed; no-ops without an injector) -----------------

    def crashpoint(self, point: str) -> None:
        """Die here iff a ``service.crash`` fault fires at this point.

        A spec may target one point by name (``params={"point": ...}``);
        non-matching consults then don't count as occurrences, so
        ``after=N`` still indexes occurrences *of the targeted point*.
        Suppressed while the supervisor is mid-restart (recovery itself
        is not a crashable region in this model).
        """
        kernel = self.kernel
        faults = kernel.faults
        if faults is None or kernel.supervisor.in_restart:
            return
        spec = faults.plan.spec_for(SERVICE_CRASH)
        if spec is None:
            return
        want = spec.params.get("point")
        if want is not None and want != point:
            return
        if faults.fire(SERVICE_CRASH, point=point) is not None:
            raise ServiceCrashed(point)

    def _consult_hang(self) -> bool:
        kernel = self.kernel
        faults = kernel.faults
        if faults is None or kernel.supervisor.in_restart:
            return False
        if faults.plan.spec_for(SERVICE_HANG) is None:
            return False
        return faults.fire(SERVICE_HANG) is not None

    # -- ManagerPort (timed environment hooks) -------------------------------------

    @property
    def cpu(self):
        return self.kernel.cpu

    def code(self, off: int, n_instr: int) -> None:
        self.cpu.code(L.MANAGER_CODE_VA + off, n_instr)

    def touch(self, addr: int, *, write: bool = False) -> None:
        # Table rows are addressed by manager VA already.
        if write:
            self.cpu.store(addr)
        else:
            self.cpu.load(addr)

    def ctl_write(self, prr_id: int, field: int, value: int) -> None:
        self.cpu.write32(L.MANAGER_CTL_VA + prr_id * 0x20 + field, value)

    def _iface_va(self, prr_id: int) -> int:
        """Manager's own mapping of PRR ``prr_id``'s register page."""
        return L.GUEST_PRR_IFACE_VA + prr_id * _PAGE

    def reg_group_save(self, old_client_vm: int, prr: Prr) -> None:
        cpu = self.cpu
        base = self._iface_va(prr.prr_id)
        regs = {}
        for name, off in (("status", REG_STATUS), ("src", REG_SRC),
                          ("len", REG_LEN), ("dst", REG_DST),
                          ("outlen", REG_OUTLEN), ("irq_en", REG_IRQ_EN)):
            regs[name] = cpu.read32(base + off)
        old = self.kernel.domains[old_client_vm]
        if old.hw_data.configured:
            self.kernel.service_save_reggroup(old, prr.prr_id, regs)

    def map_iface(self, client_vm: int, prr_id: int, va: int) -> None:
        self.kernel.service_map_iface(self.kernel.domains[client_vm],
                                      prr_id, va)

    def unmap_iface(self, client_vm: int, prr_id: int) -> None:
        self.kernel.service_unmap_iface(self.kernel.domains[client_vm],
                                        prr_id)

    def mark_consistent(self, client_vm: int) -> None:
        client = self.kernel.domains[client_vm]
        if client.hw_data.configured:
            self.kernel.service_mark_consistent(client)

    def register_irq(self, client_vm: int, irq_id: int) -> None:
        self.kernel.service_register_plirq(self.kernel.domains[client_vm],
                                           irq_id)

    def unregister_irq(self, client_vm: int, irq_id: int) -> None:
        self.kernel.service_unregister_plirq(self.kernel.domains[client_vm],
                                             irq_id)

    def pcap_available(self) -> bool:
        return not self.kernel.machine.pcap.busy

    def pcap_launch(self, entry, prr_id: int, client_vm: int) -> None:
        from ..fpga.pcap import PCAP_LEN, PCAP_SRC, PCAP_TARGET
        cpu = self.cpu
        pcap_va = L.MANAGER_CTL_VA + _PAGE
        cpu.write32(pcap_va + PCAP_SRC, entry.bitstream.paddr)
        cpu.write32(pcap_va + PCAP_LEN, entry.bitstream.size)
        cpu.write32(pcap_va + PCAP_TARGET, prr_id)
        self.kernel.service_set_pcap_client(self.kernel.domains[client_vm])
        self.kernel.machine.pcap.start_transfer(entry.bitstream, prr_id)
        if self.block_on_pcap:
            from ..fpga.pcap import PCAP_STATUS
            while self.kernel.machine.pcap.busy:
                cpu.read32(pcap_va + PCAP_STATUS)      # poll the DONE bit
                if self.kernel.machine.pcap.busy:
                    self.kernel.sim.advance_to_next_event()

    def pcap_cancel(self, prr_id: int) -> int | None:
        return self.kernel.machine.pcap.cancel_transfer(prr_id)

    def iface_va_of(self, client_vm: int, prr_id: int) -> int | None:
        return self.kernel.domains[client_vm].prr_iface.get(prr_id)

    def prr_mapped_at(self, client_vm: int, va: int) -> int | None:
        for prr_id, mapped_va in self.kernel.domains[client_vm].prr_iface.items():
            if mapped_va == va:
                return prr_id
        return None
