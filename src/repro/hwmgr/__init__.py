"""Hardware Task Manager: allocation core, tables, and the user-level
service PD of the virtualized system (the native port lives in
:mod:`repro.guest.ports.native`)."""

from .alloc import AllocRequest, AllocResult, Allocator, ManagerPort
from .service import ManagerService
from .tables import HardwareTaskTable, HwTaskEntry, PrrRow, PrrTable

__all__ = [
    "AllocRequest", "AllocResult", "Allocator", "ManagerPort",
    "ManagerService", "HardwareTaskTable", "HwTaskEntry", "PrrRow",
    "PrrTable",
]
