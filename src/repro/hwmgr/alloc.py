"""Hardware-task allocation core — the six-stage routine of Fig. 7.

The algorithm is shared verbatim between the virtualized manager (a
user-level service PD) and the native baseline (a plain uC/OS-II function):
both ports supply the same hook surface, but the native hooks skip the
page-table and vGIC work ("in native uCOS-II the manager does not need to
update the page tables since all tasks execute in a unified memory space",
Section V-B) — that difference *is* the experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..fpga.prr import Prr, PrrStatus
from ..kernel.costs import MANAGER_COSTS as MC
from ..kernel.hypercalls import HcStatus
from .journal import OP_ALLOCATE, OP_RECLAIM, OP_RELEASE, IntentJournal
from .tables import HardwareTaskTable, HwTaskEntry, PrrTable


@dataclass
class AllocRequest:
    client_vm: int            # 0 in the native port
    task_id: int
    iface_va: int             # where the client wants the register group
    data_pa: int              # physical base of the client's data section
    data_size: int
    want_irq: bool = False


@dataclass
class AllocResult:
    status: HcStatus
    prr_id: int | None = None
    reconfigured: bool = False
    reclaimed_from: int | None = None
    irq_id: int | None = None


class ManagerPort(Protocol):
    """Environment hooks the allocation core runs against."""

    def code(self, off: int, n_instr: int) -> None:
        """Timed execution of manager code at image offset ``off``."""

    def touch(self, paddr: int, *, write: bool = False) -> None:
        """Timed access to a manager table row."""

    def ctl_write(self, prr_id: int, field: int, value: int) -> None:
        """Timed+functional write to the PRR controller's control page."""

    def reg_group_save(self, old_client_vm: int, prr: Prr) -> None:
        """Consistency protocol toward the *old* client (virt only)."""

    def map_iface(self, client_vm: int, prr_id: int, va: int) -> None: ...

    def unmap_iface(self, client_vm: int, prr_id: int) -> None: ...

    def mark_consistent(self, client_vm: int) -> None: ...

    def register_irq(self, client_vm: int, irq_id: int) -> None: ...

    def unregister_irq(self, client_vm: int, irq_id: int) -> None: ...

    def pcap_available(self) -> bool:
        """False while a PCAP transfer is in flight (single channel)."""

    def pcap_launch(self, entry: HwTaskEntry, prr_id: int,
                    client_vm: int) -> None: ...

    def iface_va_of(self, client_vm: int, prr_id: int) -> int | None:
        """Current mapping of the PRR group in the client (None if unmapped)."""

    def prr_mapped_at(self, client_vm: int, va: int) -> int | None:
        """Which PRR (if any) the client currently has mapped at ``va``."""

    def crashpoint(self, point: str) -> None:
        """Named crash site: raises ServiceCrashed when a ``service.crash``
        fault fires here (no-op otherwise — and always in the native port)."""

    def pcap_cancel(self, prr_id: int) -> int | None:
        """Cancel an in-flight PCAP transfer targeting ``prr_id``."""


# Control-page field offsets (mirrors fpga.controller).
from ..fpga.controller import (  # noqa: E402  (kept close to use)
    CTL_CLEAR,
    CTL_CLIENT,
    CTL_HWMMU_BASE,
    CTL_HWMMU_LIMIT,
    CTL_IRQ_LINE,
    CTL_KILL,
)


class Allocator:
    """Stateful allocation engine over the two tables + live PRR objects."""

    def __init__(self, port: ManagerPort, task_table: HardwareTaskTable,
                 prr_table: PrrTable, prrs: list[Prr],
                 journal: IntentJournal | None = None) -> None:
        self.port = port
        self.tasks = task_table
        self.prr_table = prr_table
        self.prrs = prrs
        self.journal = journal
        #: PL IRQ lines in use: line -> prr_id.
        self.irq_lines: dict[int, int] = {}
        self.stats = {"success": 0, "reconfig": 0, "busy": 0,
                      "reclaims": 0, "errors": 0, "watchdog_reclaims": 0,
                      "recovery_reclaims": 0}

    # -- helpers ------------------------------------------------------------

    def _is_busy(self, prr: Prr) -> bool:
        return prr.reconfiguring or prr.status == PrrStatus.BUSY

    def _choose(self, entry: HwTaskEntry, client_vm: int) -> tuple[Prr | None, bool]:
        """Stage 2: pick a PRR; returns (prr, needs_reconfig)."""
        self.port.code(0x400, MC.prr_table_scan_per_prr * len(entry.prr_list))
        hot: list[Prr] = []
        cold: list[Prr] = []
        for prr_id in entry.prr_list:
            prr = self.prrs[prr_id]
            self.port.touch(self.prr_table.row(prr_id).row_addr)
            if self._is_busy(prr):
                continue
            if prr.core is not None and prr.core.name == entry.name:
                hot.append(prr)
            else:
                cold.append(prr)

        def rank(prr: Prr) -> int:
            # Prefer: already ours, then unowned, then someone else's.
            if prr.client_vm == client_vm:
                return 0
            if prr.client_vm is None:
                return 1
            return 2

        if hot:
            return min(hot, key=rank), False
        if cold:
            return min(cold, key=rank), True
        return None, False

    # -- the six stages ----------------------------------------------------------

    def allocate(self, req: AllocRequest) -> AllocResult:
        port = self.port
        port.code(0x000, MC.service_entry)

        # Stage 1-2: task lookup + PRR selection.
        entry = self.tasks.by_id(req.task_id)
        port.code(0x200, MC.task_table_lookup)
        if entry is None:
            self.stats["errors"] += 1
            return AllocResult(HcStatus.ERR_NOTASK)
        port.touch(entry.row_addr)
        prr, needs_reconfig = self._choose(entry, req.client_vm)
        if prr is None:
            self.stats["busy"] += 1
            port.code(0xA00, MC.status_return)
            return AllocResult(HcStatus.BUSY)
        if needs_reconfig and not port.pcap_available():
            # Single-channel PCAP is mid-transfer: report BUSY before any
            # state is committed; the client simply retries.
            self.stats["busy"] += 1
            port.code(0xA00, MC.status_return)
            return AllocResult(HcStatus.BUSY)
        row = self.prr_table.row(prr.prr_id)
        reclaimed_from: int | None = None

        # Write-ahead intent: from here on the routine mutates fabric
        # state, so it must be recoverable (docs/RECOVERY.md).  The
        # journal itself is untimed — its modelled cost rides on the
        # alloc_bookkeeping budget below.
        port.crashpoint("alloc.pre_intent")
        jentry = None
        if self.journal is not None:
            jentry = self.journal.begin(
                OP_ALLOCATE, client_vm=req.client_vm, task_id=req.task_id,
                prr_id=prr.prr_id, reconfig=needs_reconfig)
        port.crashpoint("alloc.post_intent")
        if jentry is not None:
            self.journal.note_act(jentry)

        # Stage 3a: reclaim from a previous client (consistency protocol).
        if prr.client_vm is not None and prr.client_vm != req.client_vm:
            reclaimed_from = prr.client_vm
            self.stats["reclaims"] += 1
            port.code(0x500, MC.reclaim_save_regs)
            port.reg_group_save(reclaimed_from, prr)
            if port.iface_va_of(reclaimed_from, prr.prr_id) is not None:
                port.unmap_iface(reclaimed_from, prr.prr_id)
            port.ctl_write(prr.prr_id, CTL_CLEAR, 1)

        # Stage 3b: map the register group into the requesting client.
        # Hygiene: if the client already has a *different* PRR mapped at the
        # requested VA, demap it first (it stays allocated, just unmapped).
        other = port.prr_mapped_at(req.client_vm, req.iface_va)
        if other is not None and other != prr.prr_id:
            port.unmap_iface(req.client_vm, other)
        current_va = port.iface_va_of(req.client_vm, prr.prr_id)
        if current_va != req.iface_va:
            port.code(0x600, MC.map_iface_page)
            if current_va is not None:
                port.unmap_iface(req.client_vm, prr.prr_id)
            port.map_iface(req.client_vm, prr.prr_id, req.iface_va)
        port.ctl_write(prr.prr_id, CTL_CLIENT, req.client_vm)
        port.crashpoint("alloc.mid_act")

        # Stage 4: load the hwMMU with the client's data section.
        port.code(0x700, MC.hwmmu_load)
        port.ctl_write(prr.prr_id, CTL_HWMMU_BASE, req.data_pa)
        port.ctl_write(prr.prr_id, CTL_HWMMU_LIMIT, req.data_pa + req.data_size)
        port.mark_consistent(req.client_vm)

        # Optional: PL IRQ line allocation + vGIC registration (Fig. 6).
        irq_id: int | None = None
        if req.want_irq:
            irq_id = self._attach_irq(prr, req.client_vm)

        # Stage 5: reconfigure through PCAP if the task is not resident.
        if needs_reconfig:
            port.code(0x800, MC.pcap_launch)
            port.pcap_launch(entry, prr.prr_id, req.client_vm)
        # Shared bookkeeping (present natively too).
        port.code(0x900, MC.alloc_bookkeeping)

        row.client_vm = req.client_vm
        row.task_name = entry.name
        port.touch(row.row_addr, write=True)

        # Commit point.  A reconfiguring allocation stays in ACT until the
        # PCAP transfer lands (the service commits on the done IRQ, aborts
        # on give-up/cancel); everything else commits here.
        port.crashpoint("alloc.pre_commit")
        if jentry is not None and not needs_reconfig:
            self.journal.commit(jentry)
        port.crashpoint("alloc.post_commit")

        # Stage 6: status return; reconfiguration completion is *not*
        # awaited (the client polls or takes the PCAP IRQ).
        port.code(0xA00, MC.status_return)
        if needs_reconfig:
            self.stats["reconfig"] += 1
            return AllocResult(HcStatus.RECONFIG, prr.prr_id, True,
                               reclaimed_from, irq_id)
        self.stats["success"] += 1
        return AllocResult(HcStatus.SUCCESS, prr.prr_id, False,
                           reclaimed_from, irq_id)

    def _attach_irq(self, prr: Prr, client_vm: int) -> int | None:
        from ..gic.irqs import N_PL_IRQS, pl_irq
        self.port.code(0xB00, MC.irq_line_setup)
        line = prr.irq_line
        if line is None:
            for candidate in range(N_PL_IRQS):
                if candidate not in self.irq_lines:
                    line = candidate
                    self.irq_lines[line] = prr.prr_id
                    self.port.ctl_write(prr.prr_id, CTL_IRQ_LINE, line)
                    break
            else:
                return None        # all 16 PL lines in use
        irq_id = pl_irq(line)
        self.port.register_irq(client_vm, irq_id)
        return irq_id

    # -- watchdog recovery -------------------------------------------------------

    def force_reclaim(self, prr_id: int, *,
                      reason: str = "watchdog") -> int | None:
        """Take a compromised PRR back to the free pool.

        Runs the same consistency protocol as a normal reclaim (stage 3a
        of Fig. 7): register snapshot + 'inconsistent' state flag into the
        old client's data section, demap its register-group page, then —
        unlike a normal reclaim — kill the wedged core outright
        (CTL_KILL), because its state cannot be trusted.  The region ends
        unowned and empty; the old client discovers the loss through its
        state flag / unmapped interface and re-requests the task.

        ``reason`` is ``"watchdog"`` (hung task; bumps ``row.hangs``),
        ``"recovery"`` (crash-recovery rollback/reconcile) or
        ``"client_died"`` (owning VM killed — docs/RECOVERY.md §9; counts
        with the recovery reclaims).  The routine
        is **idempotent**: a second call on an already-clean region — a
        watchdog kill racing a crash-recovery pass, say — returns early
        without touching hardware or double-counting, so ``row.reclaims``
        moves exactly once per actual reclaim.  An in-flight PCAP
        transfer targeting the region is cancelled, and any open journal
        entry for it is aborted (docs/RECOVERY.md).
        Returns the old client's VM id (None if nothing was reclaimed).
        """
        port = self.port
        prr = self.prrs[prr_id]
        row = self.prr_table.row(prr_id)
        old = prr.client_vm
        jentry = (self.journal.entry_for_prr(prr_id)
                  if self.journal is not None else None)
        if (old is None and row.client_vm is None and not prr.reconfiguring
                and jentry is None):
            return None             # already reclaimed — idempotent no-op
        if prr.reconfiguring:
            port.pcap_cancel(prr_id)
            # The cancel's abort hook may already have closed the entry.
            jentry = (self.journal.entry_for_prr(prr_id)
                      if self.journal is not None else None)
        if jentry is not None and jentry.op == OP_ALLOCATE:
            self.journal.abort(jentry)
        rec = None
        if self.journal is not None:
            rec = self.journal.reuse_or_begin(
                OP_RECLAIM, client_vm=old, task_id=0, prr_id=prr_id)
            self.journal.note_act(rec)
        port.code(0x500, MC.reclaim_save_regs)
        if old is not None:
            port.reg_group_save(old, prr)
            if port.iface_va_of(old, prr_id) is not None:
                port.unmap_iface(old, prr_id)
            if prr.irq_line is not None:
                from ..gic.irqs import pl_irq
                port.unregister_irq(old, pl_irq(prr.irq_line))
        port.crashpoint("reclaim.pre_commit")
        port.ctl_write(prr_id, CTL_KILL, 1)
        port.ctl_write(prr_id, CTL_CLIENT, 0xFFFF_FFFF)
        port.ctl_write(prr_id, CTL_HWMMU_BASE, 0)
        port.ctl_write(prr_id, CTL_HWMMU_LIMIT, 0)
        row.client_vm = None
        row.task_name = None
        row.reclaims += 1
        if reason == "watchdog":
            row.hangs += 1
            self.stats["watchdog_reclaims"] += 1
        else:
            self.stats["recovery_reclaims"] += 1
        port.touch(row.row_addr, write=True)
        if rec is not None:
            self.journal.commit(rec)
        port.code(0xA00, MC.status_return)
        return old

    # -- release ----------------------------------------------------------------

    def release(self, client_vm: int, task_id: int) -> AllocResult:
        """HC_HWTASK_RELEASE: give up every PRR this client holds for the
        task (or all of them when task_id == 0)."""
        port = self.port
        port.code(0x000, MC.service_entry)
        entry = self.tasks.by_id(task_id) if task_id else None
        jentry = None
        if self.journal is not None:
            jentry = self.journal.reuse_or_begin(
                OP_RELEASE, client_vm=client_vm, task_id=task_id,
                prr_id=None)
        released = None
        for row in self.prr_table.rows_of_client(client_vm):
            if entry is not None and row.task_name != entry.name:
                continue
            if jentry is not None:
                self.journal.note_act(jentry)
            prr = self.prrs[row.prr_id]
            if port.iface_va_of(client_vm, row.prr_id) is not None:
                port.unmap_iface(client_vm, row.prr_id)
            if prr.irq_line is not None:
                from ..gic.irqs import pl_irq
                port.unregister_irq(client_vm, pl_irq(prr.irq_line))
            port.ctl_write(row.prr_id, CTL_CLIENT, 0xFFFF_FFFF)
            port.ctl_write(row.prr_id, CTL_HWMMU_BASE, 0)
            port.ctl_write(row.prr_id, CTL_HWMMU_LIMIT, 0)
            row.client_vm = None
            port.touch(row.row_addr, write=True)
            released = row.prr_id
        port.crashpoint("release.pre_commit")
        if jentry is not None:
            self.journal.commit(jentry)
        port.code(0xA00, MC.status_return)
        return AllocResult(HcStatus.SUCCESS if released is not None
                           else HcStatus.ERR_STATE, released)
