"""Write-ahead intent journal for the Hardware Task Manager.

The manager follows the paper's de-privileged-service argument to its
conclusion: if the service PD can die at any instruction, every mutation
of fabric state must be replayable.  Before touching a PRR the manager
appends an **intent** record to a small journal kept in its data area
(``L.MANAGER_DATA_VA + JOURNAL_OFF``), advances it to **act** once the
first side effect lands, and **commits** (or **aborts**) it when the
operation completes.  The journal object itself is owned by the *kernel*
(``kernel.manager_journal``) and the backing frames are part of the
manager PD's persistent data area, so it survives a manager restart — the
fresh instance replays or rolls back whatever its predecessor left open
(see :mod:`repro.hwmgr.recovery` and docs/RECOVERY.md).

Journal bookkeeping is deliberately *untimed*: the modelled cost rides on
the allocator's existing ``alloc_bookkeeping`` budget, so healthy runs
stay cycle-identical to the pre-journal codebase.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Byte offset of the journal inside the manager data area.
JOURNAL_OFF = 0x5000

#: Entry life cycle (monotonic; COMMITTED/ABORTED are terminal).
INTENT = "intent"
ACT = "act"
COMMITTED = "committed"
ABORTED = "aborted"

#: Journalled operations.
OP_ALLOCATE = "allocate"
OP_RELEASE = "release"
OP_RECLAIM = "reclaim"

_OPEN_STATES = frozenset({INTENT, ACT})


@dataclass
class JournalEntry:
    """One journalled manager operation (fixed 32-byte slot in the model)."""

    seq: int
    op: str
    client_vm: int | None
    task_id: int
    prr_id: int | None
    row_addr: int = 0
    state: str = INTENT
    reconfig: bool = False

    @property
    def open(self) -> bool:
        return self.state in _OPEN_STATES


class IntentJournal:
    """Append-only intent log with idempotent state transitions.

    ``begin`` appends an INTENT record; ``note_act`` marks the first side
    effect; ``commit``/``abort`` close the entry.  Closing an already
    closed entry is a no-op (recovery may race a late PCAP callback), but
    an entry can never move *back* to an open state, so an operation is
    applied at most once.
    """

    def __init__(self, row_base: int = 0) -> None:
        self.row_base = row_base
        self._next_seq = 0
        self._entries: list[JournalEntry] = []
        self.stats = {"opened": 0, "committed": 0, "aborted": 0,
                      "replayed": 0, "rolled_back": 0}

    # -- the write path (manager side) ----------------------------------

    def begin(self, op: str, *, client_vm: int | None, task_id: int,
              prr_id: int | None, reconfig: bool = False) -> JournalEntry:
        e = JournalEntry(seq=self._next_seq, op=op, client_vm=client_vm,
                         task_id=task_id, prr_id=prr_id, reconfig=reconfig,
                         row_addr=self.row_base + 32 * (self._next_seq % 64))
        self._next_seq += 1
        self._entries.append(e)
        self.stats["opened"] += 1
        return e

    def reuse_or_begin(self, op: str, *, client_vm: int | None, task_id: int,
                       prr_id: int | None,
                       reconfig: bool = False) -> JournalEntry:
        """Return the newest matching *open* entry, or append a fresh one.

        Recovery replays an interrupted release/reclaim by re-running it
        through the normal code path; reusing the predecessor's open
        entry keeps the journal balanced (no orphaned open records).
        """
        for e in reversed(self._entries):
            if (e.open and e.op == op and e.client_vm == client_vm
                    and e.task_id == task_id and e.prr_id == prr_id):
                return e
        return self.begin(op, client_vm=client_vm, task_id=task_id,
                          prr_id=prr_id, reconfig=reconfig)

    def note_act(self, entry: JournalEntry) -> None:
        if entry.state == INTENT:
            entry.state = ACT

    def commit(self, entry: JournalEntry) -> None:
        if entry.open:
            entry.state = COMMITTED
            self.stats["committed"] += 1

    def abort(self, entry: JournalEntry) -> None:
        if entry.open:
            entry.state = ABORTED
            self.stats["aborted"] += 1

    # -- the read path (recovery side) ----------------------------------

    def open_entries(self) -> list[JournalEntry]:
        return [e for e in self._entries if e.open]

    def entry_for_prr(self, prr_id: int) -> JournalEntry | None:
        """The newest *open* entry touching ``prr_id`` (or ``None``)."""
        for e in reversed(self._entries):
            if e.open and e.prr_id == prr_id:
                return e
        return None

    def balanced(self) -> bool:
        """Every opened entry is committed, aborted, or still open."""
        open_n = len(self.open_entries())
        return (self.stats["opened"]
                == self.stats["committed"] + self.stats["aborted"] + open_n)

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<IntentJournal opened={self.stats['opened']} "
                f"open={len(self.open_entries())} "
                f"committed={self.stats['committed']} "
                f"aborted={self.stats['aborted']}>")
