"""Brownout mode: degrade best-effort hardware work under pressure.

When the fabric is saturated — PRR occupancy or the manager's request
queue past a configured threshold — *best-effort* hardware tasks should
not queue for reconfiguration at all: the adaptive FFT/QAM guest APIs
already carry a bit-identical software fallback (PR 4), so routing a
best-effort task straight to software sheds fabric load without changing
a single output byte (overload invariant O5).  Critical tasks are
untouched: they keep their hardware path and its latency (the
mixed-criticality contract of docs/FLEET.md §11).

A :class:`BrownoutController` is attached as ``kernel.brownout``
(default ``None`` — the mode costs nothing when absent).  The manager
service observes pressure after every drained request; the guest API
consults :func:`repro.guest.api._brownout_reroute` before starting a
best-effort hardware task.  Enter/exit use distinct thresholds
(hysteresis), so pressure flapping at the boundary cannot thrash tasks
between substrates.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BrownoutConfig:
    """Pressure thresholds; enter must be strictly above exit so the
    controller has a hysteresis band to rest in."""

    #: Enter brownout when the allocated-PRR fraction >= this ...
    enter_occupancy: float = 0.75
    #: ... or manager queue depth >= this.
    enter_queue_depth: int = 4
    #: Leave brownout only when occupancy <= this ...
    exit_occupancy: float = 0.25
    #: ... and queue depth <= this.
    exit_queue_depth: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.exit_occupancy < self.enter_occupancy <= 1.0:
            raise ValueError(
                f"need 0 <= exit_occupancy < enter_occupancy <= 1, got "
                f"{self.exit_occupancy} / {self.enter_occupancy}")
        if self.enter_queue_depth < 1:
            raise ValueError(f"enter_queue_depth must be >= 1, got "
                             f"{self.enter_queue_depth}")
        if not 0 <= self.exit_queue_depth < self.enter_queue_depth:
            raise ValueError(
                f"need 0 <= exit_queue_depth < enter_queue_depth, got "
                f"{self.exit_queue_depth} / {self.enter_queue_depth}")


class BrownoutController:
    """Hysteresis state machine over fabric pressure.

    ``observe(kernel)`` recomputes pressure from ground truth — the
    allocated fraction of ``kernel.machine.prrs`` (the same ownership
    signal :meth:`~repro.obs.acct.Accountant.sync_prr_occupancy`
    tracks) and the depth of the manager mailbox — and flips the mode
    when a threshold is crossed;
    ``active`` is what the guest API consults.  All inputs are
    deterministic simulation state, so brownout windows are
    byte-reproducible.
    """

    def __init__(self, config: BrownoutConfig | None = None) -> None:
        self.cfg = config or BrownoutConfig()
        self.active = False
        self.entries = 0
        self.exits = 0
        self.reroutes = 0

    def pressure(self, kernel) -> tuple[float, int]:
        prrs = kernel.machine.prrs
        held = sum(1 for p in prrs if p.client_vm is not None)
        occupancy = held / len(prrs) if prrs else 0.0
        return occupancy, len(kernel.manager_queue)

    def observe(self, kernel) -> bool:
        """Recompute pressure; returns the (possibly new) mode."""
        occupancy, depth = self.pressure(kernel)
        if not self.active:
            if (occupancy >= self.cfg.enter_occupancy
                    or depth >= self.cfg.enter_queue_depth):
                self.active = True
                self.entries += 1
                kernel.metrics.counter("hwmgr.brownout.entries").inc()
                kernel.metrics.gauge("hwmgr.brownout.active").set(1)
        else:
            if (occupancy <= self.cfg.exit_occupancy
                    and depth <= self.cfg.exit_queue_depth):
                self.active = False
                self.exits += 1
                kernel.metrics.counter("hwmgr.brownout.exits").inc()
                kernel.metrics.gauge("hwmgr.brownout.active").set(0)
        return self.active

    def note_reroute(self) -> None:
        self.reroutes += 1
