"""Bitstream store: the ``.bit`` files of Section IV-B.

Each hardware task's configuration data lives in DRAM as an opaque blob;
Mini-NOVA maps these exclusively into the Hardware Task Manager's address
space.  The blob contents are synthesized deterministically from the task
name (there is obviously no real synthesis toolchain here), but they are
*really stored* in simulated DRAM and *really streamed* by the PCAP model,
so transfer sizes and latencies are honest.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..common.errors import DeviceError
from ..mem.phys import Bus, FrameAllocator
from .ip import IpCore, make_core


@dataclass(frozen=True)
class Bitstream:
    """One stored partial bitstream."""

    task: str          # IP-core/task name ("fft1024", "qam16", ...)
    paddr: int         # where the blob sits in DRAM
    size: int          # bytes

    def checksum(self, bus: Bus) -> str:
        return hashlib.sha256(bus.dram.read_bytes(self.paddr, self.size)).hexdigest()


class BitstreamStore:
    """Loads task bitstreams into DRAM and indexes them by task name."""

    def __init__(self, bus: Bus, frames: FrameAllocator) -> None:
        self.bus = bus
        self.frames = frames
        self._by_task: dict[str, Bitstream] = {}
        self._cores: dict[str, IpCore] = {}

    def install(self, task: str) -> Bitstream:
        """Synthesize + store the bitstream for ``task``; idempotent."""
        if task in self._by_task:
            return self._by_task[task]
        core = make_core(task)
        size = core.bitstream_bytes
        paddr = self.frames.alloc(size, align=4096)
        # Deterministic pseudo-contents so checksums are stable in tests.
        seed = hashlib.sha256(task.encode()).digest()
        blob = (seed * (size // len(seed) + 1))[:size]
        self.bus.dram.write_bytes(paddr, blob)
        bit = Bitstream(task=task, paddr=paddr, size=size)
        self._by_task[task] = bit
        self._cores[task] = core
        return bit

    def get(self, task: str) -> Bitstream:
        if task not in self._by_task:
            raise DeviceError(f"no bitstream installed for task {task!r}")
        return self._by_task[task]

    def core(self, task: str) -> IpCore:
        if task not in self._cores:
            raise DeviceError(f"no core for task {task!r}")
        return self._cores[task]

    def tasks(self) -> list[str]:
        return sorted(self._by_task)

    def __contains__(self, task: str) -> bool:
        return task in self._by_task
