"""PRR controller: static logic governing every reconfigurable region.

Per Section IV (Figs. 4-6), the controller
- exposes one register group per PRR, each on its *own 4 KB page* so the
  kernel can map exactly one region into exactly one client VM;
- runs the **hwMMU**: every DMA the hosted task issues is bounds-checked
  against the client VM's hardware-task data section, because the FPGA
  bypasses the CPU's MMU entirely;
- owns the 16 PL IRQ lines and raises the one assigned to a PRR when its
  task completes;
- executes tasks: DMA in over AXI_HP, IP-core latency, DMA out, with the
  corresponding PL-cycle cost converted onto the CPU timebase.

A control page *after* the per-PRR pages (page index = n_prrs) carries the
hwMMU windows and IRQ routing; only the Hardware Task Manager maps it.
"""

from __future__ import annotations

from typing import Callable

from ..common.errors import DeviceError
from ..common.params import FpgaParams
from ..common.units import fpga_cycles_to_cpu_cycles
from ..gic.gic import Gic
from ..gic.irqs import pl_irq
from ..mem.phys import Bus
from ..sim.engine import EventHandle, Simulator
from .ip import IpCore
from .prr import (
    CTRL_RESET,
    CTRL_START,
    NO_IRQ_LINE,
    Prr,
    PrrStatus,
    REG_CTRL,
    REG_CYCLES,
    REG_DST,
    REG_IRQ_EN,
    REG_LEN,
    REG_OUTLEN,
    REG_SRC,
    REG_STATUS,
    REG_TASKID,
)

PAGE = 4096

# Control-page per-PRR record layout (stride 0x20).
CTL_STRIDE = 0x20
CTL_HWMMU_BASE = 0x00
CTL_HWMMU_LIMIT = 0x04
CTL_IRQ_LINE = 0x08
CTL_CLIENT = 0x0C
CTL_CLEAR = 0x10
CTL_KILL = 0x14

#: REG_TASKID value a client reads after its reconfiguration was aborted.
TASKID_RECONFIG_FAILED = 0xFFFF_FFFF


def task_id_of(name: str) -> int:
    """Stable non-zero 16-bit ID exposed in REG_TASKID."""
    h = 0
    for ch in name.encode():
        h = (h * 131 + ch) & 0xFFFF
    return h or 1


class PrrController:
    """MMIO device covering ``n_prrs + 1`` pages at the AXI_GP window."""

    def __init__(self, sim: Simulator, gic: Gic, bus: Bus,
                 prrs: list[Prr], params: FpgaParams,
                 cpu_hz: int) -> None:
        self.sim = sim
        self.gic = gic
        self.bus = bus
        self.prrs = prrs
        self.params = params
        self.cpu_hz = cpu_hz
        self._pending: dict[int, EventHandle] = {}
        self._watchdogs: dict[int, EventHandle] = {}
        #: Hook for tests/probes: called (prr_id, status) at completion.
        self.on_complete: Callable[[int, PrrStatus], None] | None = None
        #: Hook wired by the kernel: called (prr_id) when the watchdog
        #: detects a hung task.  Without it the controller recovers
        #: locally (status -> ERR_NOTASK) but nobody reclaims the region.
        self.on_hang: Callable[[int], None] | None = None
        #: Fault injector attachment point (docs/FAULTS.md).  When None
        #: (the default) every fault site is dead code: no extra events
        #: are scheduled and timing is identical to the unhardened model.
        self.faults = None
        #: Watchdog deadline = expected latency x factor + slack cycles.
        self.watchdog_factor = 4
        self.watchdog_slack = 10_000

    @property
    def window_size(self) -> int:
        return (len(self.prrs) + 1) * PAGE

    # -- MMIO ------------------------------------------------------------

    def mmio_read(self, offset: int) -> int:
        page, off = divmod(offset, PAGE)
        if page < len(self.prrs):
            return self._reg_read(self.prrs[page], off)
        return self._ctl_read(off)

    def mmio_write(self, offset: int, value: int) -> None:
        page, off = divmod(offset, PAGE)
        if page < len(self.prrs):
            self._reg_write(self.prrs[page], off, value)
        else:
            self._ctl_write(off, value)

    # -- per-PRR register group ---------------------------------------------

    def _reg_read(self, prr: Prr, off: int) -> int:
        if off == REG_STATUS:
            return int(prr.status)
        if off == REG_SRC:
            return prr.src
        if off == REG_LEN:
            return prr.length
        if off == REG_DST:
            return prr.dst
        if off == REG_OUTLEN:
            return prr.outlen
        if off == REG_IRQ_EN:
            return int(prr.irq_en)
        if off == REG_TASKID:
            if prr.status == PrrStatus.ERR_RECONFIG:
                return TASKID_RECONFIG_FAILED
            return 0 if prr.core is None or prr.reconfiguring \
                else task_id_of(prr.core.name)
        if off == REG_CYCLES:
            return prr.last_exec_fpga_cycles
        return 0

    def _reg_write(self, prr: Prr, off: int, value: int) -> None:
        if off == REG_CTRL:
            if value & CTRL_RESET:
                self._cancel(prr)
                prr.reset_regs()
            if value & CTRL_START:
                self._start(prr)
        elif off == REG_SRC:
            prr.src = value
        elif off == REG_LEN:
            prr.length = value
        elif off == REG_DST:
            prr.dst = value
        elif off == REG_IRQ_EN:
            prr.irq_en = bool(value & 1)

    # -- control page (manager-only) -------------------------------------------

    def _ctl_prr(self, off: int) -> tuple[Prr, int]:
        idx, field = divmod(off, CTL_STRIDE)
        if idx >= len(self.prrs):
            raise DeviceError(f"control page offset {off:#x} beyond PRR count")
        return self.prrs[idx], field

    def _ctl_read(self, off: int) -> int:
        prr, field = self._ctl_prr(off)
        if field == CTL_HWMMU_BASE:
            return prr.hwmmu.base
        if field == CTL_HWMMU_LIMIT:
            return prr.hwmmu.limit
        if field == CTL_IRQ_LINE:
            return NO_IRQ_LINE if prr.irq_line is None else prr.irq_line
        if field == CTL_CLIENT:
            return 0xFFFF_FFFF if prr.client_vm is None else prr.client_vm
        return 0

    def _ctl_write(self, off: int, value: int) -> None:
        prr, field = self._ctl_prr(off)
        if field == CTL_HWMMU_BASE:
            prr.hwmmu.base = value
        elif field == CTL_HWMMU_LIMIT:
            prr.hwmmu.limit = value
        elif field == CTL_IRQ_LINE:
            prr.irq_line = None if value == NO_IRQ_LINE else value & 0xF
        elif field == CTL_CLIENT:
            prr.client_vm = None if value == 0xFFFF_FFFF else value
        elif field == CTL_CLEAR:
            self._cancel(prr)
            prr.reset_regs()
        elif field == CTL_KILL:
            # Watchdog reclaim: the hosted core is presumed wedged — tear
            # it down entirely; the PRR needs a fresh reconfiguration.
            self._cancel(prr)
            prr.reset_regs()
            prr.core = None

    # -- task execution -------------------------------------------------------

    def _start(self, prr: Prr) -> None:
        if prr.core is None or prr.reconfiguring or prr.status == PrrStatus.BUSY:
            prr.status = PrrStatus.ERR_NOTASK
            self._maybe_irq(prr)
            return
        core = prr.core
        outlen = core.out_len(prr.length)
        # hwMMU: both the read burst and the write burst must fall inside
        # the client's window.  The FPGA sees physical addresses only.
        if not (prr.hwmmu.allows(prr.src, prr.src + prr.length)
                and prr.hwmmu.allows(prr.dst, prr.dst + max(outlen, 1))):
            prr.violations += 1
            prr.status = PrrStatus.ERR_BOUNDS
            self._maybe_irq(prr)
            return
        prr.status = PrrStatus.BUSY
        prr.busy_since = self.sim.now
        exec_cycles = core.exec_fpga_cycles(prr.length)
        prr.last_exec_fpga_cycles = exec_cycles
        axi = self.params.axi_hp_bytes_per_cycle
        fpga_total = (self.params.dma_setup_cycles
                      + self.params.hwmmu_check_cycles
                      + -(-prr.length // axi)
                      + exec_cycles
                      + -(-outlen // axi))
        delay = fpga_cycles_to_cpu_cycles(fpga_total, self.cpu_hz, self.params.hz)
        if self.faults is not None:
            if self.faults.fire("prr.hang", prr=prr.prr_id, task=core.name):
                # The core wedges: no completion event.  Only the watchdog
                # (armed below) can get the region back.
                self._arm_watchdog(prr, delay)
                return
            if self.faults.fire("prr.spurious_done", prr=prr.prr_id,
                                task=core.name):
                # An unsolicited DONE IRQ mid-computation; status stays
                # BUSY, so a correct client re-waits.
                self.sim.schedule(max(1, delay // 2), self._maybe_irq, prr,
                                  label=f"prr{prr.prr_id}-spurious")
            self._arm_watchdog(prr, delay)
        self._pending[prr.prr_id] = self.sim.schedule(
            delay, self._complete, prr, core, outlen,
            label=f"prr{prr.prr_id}-{core.name}")

    def _arm_watchdog(self, prr: Prr, expected_delay: int) -> None:
        deadline = expected_delay * self.watchdog_factor + self.watchdog_slack
        self._watchdogs[prr.prr_id] = self.sim.schedule(
            deadline, self._watchdog_fire, prr,
            label=f"prr{prr.prr_id}-watchdog")

    def _watchdog_fire(self, prr: Prr) -> None:
        self._watchdogs.pop(prr.prr_id, None)
        if prr.status != PrrStatus.BUSY:
            return                      # completed after all; stale timer
        prr.hangs += 1
        self._cancel(prr)
        if self.on_hang is not None:
            self.on_hang(prr.prr_id)
        else:
            # No manager wired (bare-device tests): recover locally so the
            # region is at least not stuck BUSY forever.
            prr.status = PrrStatus.ERR_NOTASK
            self._maybe_irq(prr)

    def _complete(self, prr: Prr, core: IpCore, outlen: int) -> None:
        self._pending.pop(prr.prr_id, None)
        wd = self._watchdogs.pop(prr.prr_id, None)
        if wd is not None:
            wd.cancel()
        data = self.bus.dram.read_bytes(prr.src, prr.length)
        result = core.run(data)
        if len(result) != outlen:
            raise DeviceError(
                f"{core.name}: out_len() promised {outlen}, run() produced {len(result)}")
        self.bus.dram.write_bytes(prr.dst, result)
        prr.outlen = outlen
        prr.status = PrrStatus.DONE
        prr.runs += 1
        self._maybe_irq(prr)
        if self.on_complete is not None:
            self.on_complete(prr.prr_id, prr.status)

    def _maybe_irq(self, prr: Prr) -> None:
        if prr.irq_en and prr.irq_line is not None:
            self.gic.assert_irq(pl_irq(prr.irq_line))

    def _cancel(self, prr: Prr) -> None:
        ev = self._pending.pop(prr.prr_id, None)
        if ev is not None:
            ev.cancel()
        wd = self._watchdogs.pop(prr.prr_id, None)
        if wd is not None:
            wd.cancel()

    # -- reconfiguration interface (PCAP side) -------------------------------

    def begin_reconfig(self, prr_id: int) -> None:
        prr = self.prrs[prr_id]
        self._cancel(prr)
        prr.reconfiguring = True
        prr.core = None
        prr.status = PrrStatus.IDLE

    def finish_reconfig(self, prr_id: int, core: IpCore) -> None:
        prr = self.prrs[prr_id]
        if not prr.reconfiguring and prr.status == PrrStatus.ERR_RECONFIG:
            # The reconfiguration was aborted (force reclaim, crash
            # recovery) while the stream was in flight: drop the late
            # completion so the region stays in the state the abort left.
            return
        if not prr.can_host(core):
            raise DeviceError(
                f"PRR{prr_id} cannot host {core.name} (resource overflow)")
        prr.core = core
        prr.reconfiguring = False
        prr.reconfig_count += 1

    def abort_reconfig(self, prr_id: int) -> None:
        """PCAP gave up on this region's reconfiguration: leave it empty
        with a status the client can observe (REG_TASKID reads
        :data:`TASKID_RECONFIG_FAILED` until the next reconfiguration)."""
        prr = self.prrs[prr_id]
        prr.reconfiguring = False
        prr.core = None
        prr.status = PrrStatus.ERR_RECONFIG
