"""PCAP (Processor Configuration Access Port) model — the DevC engine that
streams partial bitstreams from DRAM into a PRR.

One transfer at a time (the real port is single-channel); latency is
size / throughput.  Completion raises the DevC "DONE" interrupt
(IRQ_PCAP_DONE), which Mini-NOVA routes to the VM that launched the
transfer (Section IV-D) — or which the guest may poll instead
(Section IV-E stage 6 gives both options).

Failure handling (docs/FAULTS.md): when a fault injector is attached the
port can see CRC/DMA errors, corrupted bitstreams, and hangs.  Each
attempt is guarded by a timeout; a failed attempt is retried with
exponential backoff up to ``max_retries`` times, then the port gives up
and aborts the reconfiguration — the target PRR lands in ERR_RECONFIG so
the client observes a VM-visible error instead of waiting forever.
Without an injector the happy path is cycle-identical to the unhardened
model (no timeout events are ever scheduled).
"""

from __future__ import annotations

from typing import Callable

from ..common.errors import DeviceBusy
from ..common.params import FpgaParams
from ..gic.gic import Gic
from ..gic.irqs import IRQ_PCAP_DONE
from ..sim.engine import EventHandle, Simulator
from .bitstream import Bitstream
from .controller import PrrController

# MMIO register offsets (devcfg-flavoured, simplified).
PCAP_CTRL = 0x00
PCAP_STATUS = 0x04     # bit0 busy, bit1 done-since-last-clear
PCAP_SRC = 0x08
PCAP_LEN = 0x0C
PCAP_TARGET = 0x10     # PRR id
PCAP_INT_EN = 0x14

PCAP_WINDOW_SIZE = 0x100


class Pcap:
    def __init__(self, sim: Simulator, gic: Gic, controller: PrrController,
                 params: FpgaParams, cpu_hz: int) -> None:
        self.sim = sim
        self.gic = gic
        self.controller = controller
        self.params = params
        self.cpu_hz = cpu_hz
        self.busy = False
        self.done_flag = False
        self.int_en = True
        self.transfers = 0
        self.bytes_moved = 0
        #: Hook: called (prr_id, task_name) when a reconfiguration lands.
        self.on_done: Callable[[int, str], None] | None = None
        #: Hook: called (prr_id) when a reconfiguration is abandoned —
        #: retries exhausted or the transfer cancelled (docs/RECOVERY.md).
        self.on_abort: Callable[[int], None] | None = None
        self._regs = {"src": 0, "len": 0, "target": 0}
        #: Fault injector attachment point; None = happy path only.
        self.faults = None
        #: Failed attempts are retried this many times before giving up.
        self.max_retries = 2
        #: First retry waits this long; each further retry doubles it.
        self.retry_backoff_cycles = 1_000
        #: Per-attempt timeout = expected latency x factor + slack.
        self.timeout_factor = 3
        self.timeout_slack = 1_000
        # In-flight transfer state (valid while ``busy``).
        self._xfer_bitstream: Bitstream | None = None
        self._xfer_prr = 0
        self._xfer_task = ""
        self._xfer_attempt = 0
        self._xfer_corrupt = False
        self._timeout_ev: EventHandle | None = None
        self._completion_ev: EventHandle | None = None
        self._retry_ev: EventHandle | None = None
        # Observability (attached by the kernel / native system at boot):
        # pcap_xfer_start/_end span + transfer counters, docs/OBSERVABILITY.md.
        self._tracer = None
        self._metrics = None
        self._m_transfers = None
        self._m_bytes = None
        self._m_xfer_cycles = None

    def attach_obs(self, tracer=None, metrics=None) -> None:
        """Wire this port into an observability layer (idempotent)."""
        self._tracer = tracer
        self._metrics = metrics
        if metrics is not None:
            self._m_transfers = metrics.counter("pcap.transfers")
            self._m_bytes = metrics.counter("pcap.bytes_moved")
            self._m_xfer_cycles = metrics.histogram("pcap.xfer_cycles")
            # Failure/recovery counters, zero-valued until a fault plan
            # actually injects something (docs/FAULTS.md).
            metrics.counter("pcap.errors")
            metrics.counter("recovery.pcap_retries")
            metrics.counter("recovery.pcap_giveups")
            metrics.counter("recovery.pcap_cancels")

    # -- direct API (used by the Hardware Task Manager) --------------------

    def transfer_cycles(self, size: int) -> int:
        """CPU-cycle latency for streaming ``size`` bytes through PCAP."""
        return -(-size * self.cpu_hz // self.params.pcap_bytes_per_sec)

    def start_transfer(self, bitstream: Bitstream, prr_id: int,
                       core_name: str | None = None) -> int:
        """Begin a reconfiguration; returns expected latency in CPU cycles.

        Raises :class:`DeviceBusy` if a transfer is already in flight
        (the caller — the manager — serializes PCAP use).
        """
        if self.busy:
            raise DeviceBusy("PCAP transfer already in progress")
        self.busy = True
        self.done_flag = False
        self._xfer_bitstream = bitstream
        self._xfer_prr = prr_id
        self._xfer_task = core_name or bitstream.task
        self._xfer_attempt = 0
        return self._launch()

    def _launch(self) -> int:
        """One transfer attempt (the whole bitstream streams every time)."""
        bitstream, prr_id, task = (self._xfer_bitstream, self._xfer_prr,
                                   self._xfer_task)
        assert bitstream is not None
        self._xfer_attempt += 1
        self._xfer_corrupt = False
        self.transfers += 1
        self.bytes_moved += bitstream.size
        self.controller.begin_reconfig(prr_id)
        delay = self.transfer_cycles(bitstream.size)
        if self._tracer is not None:
            self._tracer.mark("pcap_xfer_start", cat="pcap", prr=prr_id,
                              task=task, bytes=bitstream.size)
        if self._m_transfers is not None:
            self._m_transfers.inc()
            self._m_bytes.inc(bitstream.size)
            self._m_xfer_cycles.observe(delay)
        self._retry_ev = None
        completion = self.sim.schedule(delay, self._complete, prr_id, task,
                                       label=f"pcap-{task}->prr{prr_id}")
        if self.faults is not None:
            timeout = delay * self.timeout_factor + self.timeout_slack
            if self.faults.fire("bitstream.corrupt", prr=prr_id, task=task):
                # The stream lands but fails its checksum at completion.
                self._xfer_corrupt = True
            if self.faults.fire("pcap.hang", prr=prr_id, task=task):
                # The DMA stalls: push completion past the timeout so the
                # watchdog path (not the DONE path) resolves this attempt.
                completion = self.sim.defer(completion, timeout)
            self._timeout_ev = self.sim.schedule(
                timeout, self._timeout_fire, completion,
                label=f"pcap-timeout-prr{prr_id}")
        self._completion_ev = completion
        return delay

    def _disarm_timeout(self) -> None:
        if self._timeout_ev is not None:
            self._timeout_ev.cancel()
            self._timeout_ev = None

    def _timeout_fire(self, completion: EventHandle) -> None:
        self._timeout_ev = None
        if not self.busy or not completion.pending:
            return
        completion.cancel()
        self._fail("timeout")

    def _complete(self, prr_id: int, task: str) -> None:
        from .ip import make_core
        self._disarm_timeout()
        self._completion_ev = None
        if self._xfer_corrupt:
            self._fail("crc")
            return
        if self.faults is not None and self.faults.fire(
                "pcap.transfer_error", prr=prr_id, task=task):
            self._fail("dma")
            return
        self.controller.finish_reconfig(prr_id, make_core(task))
        self.busy = False
        self._xfer_bitstream = None
        if self._tracer is not None:
            self._tracer.mark("pcap_xfer_end", cat="pcap", prr=prr_id,
                              task=task)
        self.done_flag = True
        if self.int_en:
            self.gic.assert_irq(IRQ_PCAP_DONE)
        if self.on_done is not None:
            self.on_done(prr_id, task)

    def _fail(self, reason: str) -> None:
        """One attempt failed: retry with backoff or give up for good."""
        prr_id, task, attempt = self._xfer_prr, self._xfer_task, \
            self._xfer_attempt
        if self._tracer is not None:
            self._tracer.mark("pcap_xfer_error", cat="fault", prr=prr_id,
                              task=task, reason=reason, attempt=attempt)
        if self._metrics is not None:
            self._metrics.counter("pcap.errors", reason=reason).inc()
        if attempt <= self.max_retries:
            backoff = self.retry_backoff_cycles * (1 << (attempt - 1))
            if self._metrics is not None:
                self._metrics.counter("recovery.pcap_retries").inc()
            if self._tracer is not None:
                self._tracer.mark("pcap_retry", cat="fault", prr=prr_id,
                                  task=task, attempt=attempt,
                                  backoff=backoff)
            self._retry_ev = self.sim.schedule(
                backoff, self._launch,
                label=f"pcap-retry-{task}->prr{prr_id}")
            return
        # Out of retries: abort the reconfiguration.  The PRR lands in
        # ERR_RECONFIG (REG_TASKID reads all-ones), the DONE flag/IRQ still
        # fire so a waiting client wakes up and observes the error.
        if self._metrics is not None:
            self._metrics.counter("recovery.pcap_giveups").inc()
        if self._tracer is not None:
            self._tracer.mark("pcap_giveup", cat="fault", prr=prr_id,
                              task=task, attempts=attempt)
        self.controller.abort_reconfig(prr_id)
        self.busy = False
        self._xfer_bitstream = None
        self._completion_ev = None
        self.done_flag = True
        if self.int_en:
            self.gic.assert_irq(IRQ_PCAP_DONE)
        if self.on_abort is not None:
            self.on_abort(prr_id)

    def cancel_transfer(self, prr_id: int | None = None) -> int | None:
        """Abandon the in-flight transfer (crash recovery / force reclaim).

        If ``prr_id`` is given, only a transfer targeting that region is
        cancelled.  The reconfiguration is aborted exactly like an
        exhausted retry — the PRR lands in ERR_RECONFIG and the DONE
        flag/IRQ fire so any waiting client wakes up and sees the error —
        and the ``on_abort`` hook runs.  Returns the cancelled target's
        PRR id, or ``None`` if there was nothing to cancel.
        """
        if not self.busy:
            return None
        target = self._xfer_prr
        if prr_id is not None and prr_id != target:
            return None
        self._disarm_timeout()
        if self._completion_ev is not None:
            self._completion_ev.cancel()
            self._completion_ev = None
        if self._retry_ev is not None:
            self._retry_ev.cancel()
            self._retry_ev = None
        task = self._xfer_task
        self.controller.abort_reconfig(target)
        self.busy = False
        self._xfer_bitstream = None
        self._xfer_corrupt = False
        if self._tracer is not None:
            self._tracer.mark("pcap_cancel", cat="fault", prr=target,
                              task=task)
        if self._metrics is not None:
            self._metrics.counter("recovery.pcap_cancels").inc()
        self.done_flag = True
        if self.int_en:
            self.gic.assert_irq(IRQ_PCAP_DONE)
        if self.on_abort is not None:
            self.on_abort(target)
        return target

    # -- MMIO ----------------------------------------------------------------

    def mmio_read(self, offset: int) -> int:
        if offset == PCAP_STATUS:
            return int(self.busy) | (int(self.done_flag) << 1)
        if offset == PCAP_SRC:
            return self._regs["src"]
        if offset == PCAP_LEN:
            return self._regs["len"]
        if offset == PCAP_TARGET:
            return self._regs["target"]
        if offset == PCAP_INT_EN:
            return int(self.int_en)
        return 0

    def mmio_write(self, offset: int, value: int) -> None:
        if offset == PCAP_SRC:
            self._regs["src"] = value
        elif offset == PCAP_LEN:
            self._regs["len"] = value
        elif offset == PCAP_TARGET:
            self._regs["target"] = value
        elif offset == PCAP_INT_EN:
            self.int_en = bool(value & 1)
        elif offset == PCAP_STATUS:
            # write-one-to-clear the done flag
            if value & 2:
                self.done_flag = False
