"""PCAP (Processor Configuration Access Port) model — the DevC engine that
streams partial bitstreams from DRAM into a PRR.

One transfer at a time (the real port is single-channel); latency is
size / throughput.  Completion raises the DevC "DONE" interrupt
(IRQ_PCAP_DONE), which Mini-NOVA routes to the VM that launched the
transfer (Section IV-D) — or which the guest may poll instead
(Section IV-E stage 6 gives both options).
"""

from __future__ import annotations

from typing import Callable

from ..common.errors import ConfigError
from ..common.params import FpgaParams
from ..gic.gic import Gic
from ..gic.irqs import IRQ_PCAP_DONE
from ..sim.engine import Simulator
from .bitstream import Bitstream
from .controller import PrrController

# MMIO register offsets (devcfg-flavoured, simplified).
PCAP_CTRL = 0x00
PCAP_STATUS = 0x04     # bit0 busy, bit1 done-since-last-clear
PCAP_SRC = 0x08
PCAP_LEN = 0x0C
PCAP_TARGET = 0x10     # PRR id
PCAP_INT_EN = 0x14

PCAP_WINDOW_SIZE = 0x100


class Pcap:
    def __init__(self, sim: Simulator, gic: Gic, controller: PrrController,
                 params: FpgaParams, cpu_hz: int) -> None:
        self.sim = sim
        self.gic = gic
        self.controller = controller
        self.params = params
        self.cpu_hz = cpu_hz
        self.busy = False
        self.done_flag = False
        self.int_en = True
        self.transfers = 0
        self.bytes_moved = 0
        #: Hook: called (prr_id, task_name) when a reconfiguration lands.
        self.on_done: Callable[[int, str], None] | None = None
        self._regs = {"src": 0, "len": 0, "target": 0}
        # Observability (attached by the kernel / native system at boot):
        # pcap_xfer_start/_end span + transfer counters, docs/OBSERVABILITY.md.
        self._tracer = None
        self._m_transfers = None
        self._m_bytes = None
        self._m_xfer_cycles = None

    def attach_obs(self, tracer=None, metrics=None) -> None:
        """Wire this port into an observability layer (idempotent)."""
        self._tracer = tracer
        if metrics is not None:
            self._m_transfers = metrics.counter("pcap.transfers")
            self._m_bytes = metrics.counter("pcap.bytes_moved")
            self._m_xfer_cycles = metrics.histogram("pcap.xfer_cycles")

    # -- direct API (used by the Hardware Task Manager) --------------------

    def transfer_cycles(self, size: int) -> int:
        """CPU-cycle latency for streaming ``size`` bytes through PCAP."""
        return -(-size * self.cpu_hz // self.params.pcap_bytes_per_sec)

    def start_transfer(self, bitstream: Bitstream, prr_id: int,
                       core_name: str | None = None) -> int:
        """Begin a reconfiguration; returns expected latency in CPU cycles.

        Raises :class:`ConfigError` if a transfer is already in flight
        (the caller — the manager — serializes PCAP use).
        """
        if self.busy:
            raise ConfigError("PCAP transfer already in progress")
        task = core_name or bitstream.task
        self.busy = True
        self.done_flag = False
        self.transfers += 1
        self.bytes_moved += bitstream.size
        self.controller.begin_reconfig(prr_id)
        delay = self.transfer_cycles(bitstream.size)
        if self._tracer is not None:
            self._tracer.mark("pcap_xfer_start", cat="pcap", prr=prr_id,
                              task=task, bytes=bitstream.size)
        if self._m_transfers is not None:
            self._m_transfers.inc()
            self._m_bytes.inc(bitstream.size)
            self._m_xfer_cycles.observe(delay)
        self.sim.schedule(delay, self._complete, prr_id, task,
                          label=f"pcap-{task}->prr{prr_id}")
        return delay

    def _complete(self, prr_id: int, task: str) -> None:
        from .ip import make_core
        self.controller.finish_reconfig(prr_id, make_core(task))
        self.busy = False
        self.done_flag = True
        if self._tracer is not None:
            self._tracer.mark("pcap_xfer_end", cat="pcap", prr=prr_id,
                              task=task)
        if self.int_en:
            self.gic.assert_irq(IRQ_PCAP_DONE)
        if self.on_done is not None:
            self.on_done(prr_id, task)

    # -- MMIO ----------------------------------------------------------------

    def mmio_read(self, offset: int) -> int:
        if offset == PCAP_STATUS:
            return int(self.busy) | (int(self.done_flag) << 1)
        if offset == PCAP_SRC:
            return self._regs["src"]
        if offset == PCAP_LEN:
            return self._regs["len"]
        if offset == PCAP_TARGET:
            return self._regs["target"]
        if offset == PCAP_INT_EN:
            return int(self.int_en)
        return 0

    def mmio_write(self, offset: int, value: int) -> None:
        if offset == PCAP_SRC:
            self._regs["src"] = value
        elif offset == PCAP_LEN:
            self._regs["len"] = value
        elif offset == PCAP_TARGET:
            self._regs["target"] = value
        elif offset == PCAP_INT_EN:
            self.int_en = bool(value & 1)
        elif offset == PCAP_STATUS:
            # write-one-to-clear the done flag
            if value & 2:
                self.done_flag = False
