"""Hardware-task IP core abstraction.

An IP core is what a bitstream *configures into* a PRR: it has a resource
footprint, a latency model in PL-clock cycles, and a functional ``run``
that transforms the bytes DMA'd in into the bytes DMA'd out.  Functional
and timing behaviour both matter: integration tests check the former
against the :mod:`repro.dsp` golden models through the full DMA/hwMMU
path, benches use the latter.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass


@dataclass(frozen=True)
class PlResources:
    """FPGA resource vector (coarse: LUTs, BRAM blocks, DSP slices)."""

    luts: int
    bram: int
    dsp: int

    def fits_in(self, capacity: "PlResources") -> bool:
        return (self.luts <= capacity.luts and self.bram <= capacity.bram
                and self.dsp <= capacity.dsp)


class IpCore(ABC):
    """One configured hardware accelerator."""

    #: Short unique task name, e.g. ``fft1024`` / ``qam16`` (table index
    #: in the Hardware Task Manager).
    name: str

    @property
    @abstractmethod
    def resources(self) -> PlResources:
        """Fabric resources the core occupies."""

    @property
    @abstractmethod
    def bitstream_bytes(self) -> int:
        """Size of the partial bitstream configuring this core."""

    @abstractmethod
    def out_len(self, in_len: int) -> int:
        """Output byte count for an ``in_len``-byte input."""

    @abstractmethod
    def exec_fpga_cycles(self, in_len: int) -> int:
        """Processing latency in PL-clock cycles (excluding DMA)."""

    @abstractmethod
    def run(self, data: bytes) -> bytes:
        """Functional execution (must match the dsp golden model)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<IpCore {self.name}>"
