"""Streaming FFT IP-core model (radix-2 pipelined architecture).

Resource footprint and bitstream size scale with the transform length, so
the large FFTs only fit the two big PRRs — the constraint Section V of the
paper builds its evaluation around.
"""

from __future__ import annotations

import numpy as np

from ...dsp import fft as fft_golden
from .base import IpCore, PlResources

#: Complex64 = 2 x float32.
_SAMPLE_BYTES = 8


class FftCore(IpCore):
    """N-point streaming FFT; input/output are interleaved complex64."""

    def __init__(self, n_points: int) -> None:
        if n_points not in fft_golden.FFT_SIZES:
            raise ValueError(f"unsupported FFT size {n_points}")
        self.n = n_points
        self.name = f"fft{n_points}"

    @property
    def resources(self) -> PlResources:
        # One butterfly stage per log2 level; memory scales with N.
        stages = self.n.bit_length() - 1
        return PlResources(
            luts=1500 * stages + self.n // 4,
            bram=max(2, self.n // 512),
            dsp=4 * stages,
        )

    @property
    def bitstream_bytes(self) -> int:
        # Larger regions -> larger partial bitstreams; anchored to the
        # 300 KB..1 MB band typical of Zynq-7000 PRR bitstreams.
        stages = self.n.bit_length() - 1
        return 300_000 + 64_000 * (stages - 8) + self.n * 16

    def out_len(self, in_len: int) -> int:
        return (in_len // (self.n * _SAMPLE_BYTES)) * (self.n * _SAMPLE_BYTES)

    def exec_fpga_cycles(self, in_len: int) -> int:
        blocks = in_len // (self.n * _SAMPLE_BYTES)
        stages = self.n.bit_length() - 1
        # Pipelined: N/4 cycles per stage per block, plus fill latency.
        return 100 + blocks * (self.n // 4) * stages

    def run(self, data: bytes) -> bytes:
        usable = self.out_len(len(data))
        x = np.frombuffer(data[:usable], dtype=np.complex64)
        out = np.empty_like(x)
        for b in range(len(x) // self.n):
            out[b * self.n:(b + 1) * self.n] = fft_golden.fft(
                x[b * self.n:(b + 1) * self.n])
        return out.tobytes()
