"""QAM mapper IP-core model.

Small footprint — fits any PRR (Section V: "QAM modules have a small size
and can be hosted in all four PRRs").  Input is a packed bit stream,
output the Gray-mapped complex64 symbol stream.
"""

from __future__ import annotations

from ...dsp import qam as qam_golden
from .base import IpCore, PlResources

_SYMBOL_BYTES = 8  # complex64


class QamCore(IpCore):
    """QAM-``order`` modulator (order in {4, 16, 64})."""

    def __init__(self, order: int) -> None:
        if order not in qam_golden.QAM_ORDERS:
            raise ValueError(f"unsupported QAM order {order}")
        self.order = order
        self.name = f"qam{order}"
        self._bps = qam_golden.bits_per_symbol(order)

    @property
    def resources(self) -> PlResources:
        return PlResources(luts=800 + 100 * self._bps, bram=1, dsp=2)

    @property
    def bitstream_bytes(self) -> int:
        return 150_000 + 4_000 * self._bps

    def n_symbols(self, in_len: int) -> int:
        return (in_len * 8) // self._bps

    def out_len(self, in_len: int) -> int:
        return self.n_symbols(in_len) * _SYMBOL_BYTES

    def exec_fpga_cycles(self, in_len: int) -> int:
        # One symbol per PL cycle, fully pipelined.
        return 20 + self.n_symbols(in_len)

    def run(self, data: bytes) -> bytes:
        symbols = qam_golden.pack_bits_to_symbols(data, self.order)
        return qam_golden.modulate(symbols, self.order).tobytes()
