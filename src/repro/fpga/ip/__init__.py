"""IP-core models configured into PRRs by partial bitstreams."""

from .base import IpCore, PlResources
from .fft_core import FftCore
from .qam_core import QamCore


def make_core(name: str) -> IpCore:
    """Instantiate an IP core from its task name (e.g. ``fft1024``, ``qam16``)."""
    if name.startswith("fft"):
        return FftCore(int(name[3:]))
    if name.startswith("qam"):
        return QamCore(int(name[3:]))
    raise ValueError(f"unknown IP core {name!r}")


__all__ = ["IpCore", "PlResources", "FftCore", "QamCore", "make_core"]
