"""Partial Reconfiguration Region state.

A PRR is a predefined container in the fabric (Section IV-A): it has a
fixed resource capacity (which decides which tasks *can* be implemented in
it — only the two big regions fit FFTs in the paper's evaluation), a
register group on its own 4 KB page, an optional PL IRQ line, and an
hwMMU window confining its DMA to the current client's data section.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum

from .ip import IpCore, PlResources


class PrrStatus(IntEnum):
    IDLE = 0
    BUSY = 1
    DONE = 2
    ERR_BOUNDS = 3      # hwMMU blocked the transfer
    ERR_NOTASK = 4      # start with no / reconfiguring task
    ERR_RECONFIG = 5    # reconfiguration aborted (PCAP gave up)

#: Register offsets within a PRR's 4 KB register-group page.
REG_CTRL = 0x00
REG_STATUS = 0x04
REG_SRC = 0x08
REG_LEN = 0x0C
REG_DST = 0x10
REG_OUTLEN = 0x14
REG_IRQ_EN = 0x18
REG_TASKID = 0x1C
REG_CYCLES = 0x20

CTRL_START = 1
CTRL_RESET = 2

#: Value meaning "no IRQ line assigned".
NO_IRQ_LINE = 0xFFFF_FFFF


@dataclass
class HwMmuWindow:
    """The one allowed [base, limit) physical range for a PRR's DMA."""

    base: int = 0
    limit: int = 0

    def allows(self, lo: int, hi: int) -> bool:
        """True when [lo, hi) fits inside the window (empty window: deny)."""
        return self.base <= lo and hi <= self.limit and lo < hi


@dataclass
class Prr:
    """One region; owned and multiplexed by the PRR controller."""

    prr_id: int
    capacity: PlResources
    core: IpCore | None = None
    status: PrrStatus = PrrStatus.IDLE
    src: int = 0
    length: int = 0
    dst: int = 0
    outlen: int = 0
    irq_en: bool = False
    last_exec_fpga_cycles: int = 0
    irq_line: int | None = None
    hwmmu: HwMmuWindow = field(default_factory=HwMmuWindow)
    client_vm: int | None = None
    reconfiguring: bool = False
    #: Counters surfaced by the eval probes.
    runs: int = 0
    violations: int = 0
    reconfig_count: int = 0
    #: Cycle the current computation started (for watchdog latency math).
    busy_since: int = 0
    #: Hung computations detected by the controller watchdog.
    hangs: int = 0

    def can_host(self, core: IpCore) -> bool:
        return core.resources.fits_in(self.capacity)

    def reset_regs(self) -> None:
        """CTRL_RESET / reclaim: clear the data-path register state."""
        self.status = PrrStatus.IDLE
        self.src = self.length = self.dst = self.outlen = 0
        self.irq_en = False
        self.last_exec_fpga_cycles = 0

    def reg_snapshot(self) -> dict[str, int]:
        """Register-group content the manager saves into the old client's
        hardware-task data section on reclaim (Section IV-C)."""
        return {
            "status": int(self.status),
            "src": self.src,
            "len": self.length,
            "dst": self.dst,
            "outlen": self.outlen,
            "irq_en": int(self.irq_en),
        }
