"""Programmable-logic (PL) side of the platform: PRRs, PRR controller with
hwMMU, PCAP reconfiguration port, bitstream store, IP-core models."""

from .bitstream import Bitstream, BitstreamStore
from .controller import PAGE, PrrController, task_id_of
from .ip import FftCore, IpCore, PlResources, QamCore, make_core
from .pcap import PCAP_WINDOW_SIZE, Pcap
from .prr import HwMmuWindow, NO_IRQ_LINE, Prr, PrrStatus

__all__ = [
    "Bitstream", "BitstreamStore", "PAGE", "PrrController", "task_id_of",
    "FftCore", "IpCore", "PlResources", "QamCore", "make_core",
    "PCAP_WINDOW_SIZE", "Pcap", "HwMmuWindow", "NO_IRQ_LINE", "Prr",
    "PrrStatus",
]
