"""Unit helpers: cycles <-> time, sizes, and address formatting.

All simulated time is kept in integer *CPU cycles* (the finest clock in the
system); conversions to microseconds happen only at reporting boundaries so
no floating-point drift accumulates inside the simulation.
"""

from __future__ import annotations

KB = 1024
MB = 1024 * KB

#: Default CPU frequency of the modelled Zynq-7000 PS (paper: 660 MHz).
CPU_HZ_DEFAULT = 660_000_000

#: Default PL (FPGA fabric) frequency.
FPGA_HZ_DEFAULT = 100_000_000


def cycles_to_us(cycles: int, hz: int = CPU_HZ_DEFAULT) -> float:
    """Convert CPU cycles to microseconds."""
    return cycles * 1e6 / hz


def cycles_to_ms(cycles: int, hz: int = CPU_HZ_DEFAULT) -> float:
    """Convert CPU cycles to milliseconds."""
    return cycles * 1e3 / hz


def us_to_cycles(us: float, hz: int = CPU_HZ_DEFAULT) -> int:
    """Convert microseconds to (rounded) CPU cycles."""
    return round(us * hz / 1e6)


def ms_to_cycles(ms: float, hz: int = CPU_HZ_DEFAULT) -> int:
    """Convert milliseconds to (rounded) CPU cycles."""
    return round(ms * hz / 1e3)


def fpga_cycles_to_cpu_cycles(fpga_cycles: int, cpu_hz: int = CPU_HZ_DEFAULT,
                              fpga_hz: int = FPGA_HZ_DEFAULT) -> int:
    """Convert PL-clock cycles into the CPU-cycle timebase (rounded up)."""
    return -(-fpga_cycles * cpu_hz // fpga_hz)


def align_down(addr: int, align: int) -> int:
    """Round ``addr`` down to a multiple of ``align`` (power of two)."""
    return addr & ~(align - 1)


def align_up(addr: int, align: int) -> int:
    """Round ``addr`` up to a multiple of ``align`` (power of two)."""
    return (addr + align - 1) & ~(align - 1)


def is_aligned(addr: int, align: int) -> bool:
    """True when ``addr`` is a multiple of ``align`` (power of two)."""
    return (addr & (align - 1)) == 0


def hexaddr(addr: int) -> str:
    """Format an address the way the rest of the docs do."""
    return f"{addr:#010x}"
