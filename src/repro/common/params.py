"""Platform parameter sets (timing model + geometry) for the simulated Zynq-7000.

Every constant the timing model depends on lives here so that benches and
ablations can vary one knob at a time.  Defaults follow Section V of the
paper (660 MHz Cortex-A9, 32 KB L1 I/D, 512 KB L2, 512 MB DDR) plus public
Zynq-7000 numbers (UG585) where the paper is silent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .errors import DeviceError
from .units import CPU_HZ_DEFAULT, FPGA_HZ_DEFAULT, KB, MB


@dataclass(frozen=True)
class CacheParams:
    """Geometry and hit latency of one cache level."""

    size: int
    ways: int
    line: int = 32
    #: Extra cycles charged when the access *hits* at this level.
    hit_cycles: int = 1

    def __post_init__(self) -> None:
        if self.size % (self.ways * self.line):
            raise DeviceError(f"cache size {self.size} not divisible by ways*line")
        if self.line & (self.line - 1):
            raise DeviceError("cache line size must be a power of two")

    @property
    def sets(self) -> int:
        return self.size // (self.ways * self.line)


@dataclass(frozen=True)
class TlbParams:
    """Geometry of the (main) TLB; Cortex-A9 main TLB is 2-way, 128 entries."""

    entries: int = 128
    ways: int = 2

    def __post_init__(self) -> None:
        if self.entries % self.ways:
            raise DeviceError("TLB entries must divide evenly into ways")

    @property
    def sets(self) -> int:
        return self.entries // self.ways


@dataclass(frozen=True)
class CpuTiming:
    """Instruction/memory timing model (Section 5 of DESIGN.md)."""

    hz: int = CPU_HZ_DEFAULT
    #: Cycles per straight-line instruction (dual-issue A9 approximated).
    cpi_milli: int = 750            # CPI * 1000 to keep integer math
    l1_hit: int = 1
    l2_hit: int = 8
    dram: int = 60
    #: Pipeline-flush style penalty charged on every exception entry/return.
    exception_entry: int = 18
    exception_return: int = 12

    def instr_cycles(self, n_instr: int) -> int:
        """Issue cost for ``n_instr`` straight-line instructions."""
        return max(1, (n_instr * self.cpi_milli + 999) // 1000) if n_instr else 0


@dataclass(frozen=True)
class MemoryMapParams:
    """Physical memory layout of the modelled platform."""

    dram_base: int = 0x0010_0000
    dram_size: int = 512 * MB
    #: PRR controller register window (AXI_GP mapped), one 4 KB page per PRR.
    prr_reg_base: int = 0x4000_0000
    #: Device registers (GIC, timer, UART, DevC/PCAP).
    dev_base: int = 0xF800_0000
    dev_size: int = 16 * MB


@dataclass(frozen=True)
class FpgaParams:
    """PL-side parameters."""

    hz: int = FPGA_HZ_DEFAULT
    #: PCAP effective throughput, bytes/second (measured ~145 MB/s on Zynq).
    pcap_bytes_per_sec: int = 145 * MB
    #: AXI_HP burst bandwidth, bytes per FPGA cycle.
    axi_hp_bytes_per_cycle: int = 8
    #: Number of PL->PS interrupt lines reserved for hardware tasks (paper: 16).
    pl_irq_lines: int = 16
    #: DMA setup latency per transfer, FPGA cycles.
    dma_setup_cycles: int = 20
    #: hwMMU bounds check, FPGA cycles per transfer (ablation knob).
    hwmmu_check_cycles: int = 2


@dataclass(frozen=True)
class PlatformParams:
    """Aggregate of every tunable in the simulated platform."""

    cpu: CpuTiming = field(default_factory=CpuTiming)
    l1i: CacheParams = field(default_factory=lambda: CacheParams(size=32 * KB, ways=4))
    l1d: CacheParams = field(default_factory=lambda: CacheParams(size=32 * KB, ways=4))
    l2: CacheParams = field(default_factory=lambda: CacheParams(size=512 * KB, ways=8, hit_cycles=8))
    tlb: TlbParams = field(default_factory=TlbParams)
    memmap: MemoryMapParams = field(default_factory=MemoryMapParams)
    fpga: FpgaParams = field(default_factory=FpgaParams)
    #: Guest scheduling quantum, milliseconds (paper: 33 ms).
    quantum_ms: float = 33.0
    #: Sampling divisor for bulk (workload) memory traffic; 1 = trace every access.
    bulk_sample: int = 64
    #: Simulation-engine fast path (docs/PERFORMANCE.md): fused bulk access
    #: loop + memoized page walks.  Cycle-for-cycle identical to the slow
    #: path; off exists for differential testing, not as a safety valve.
    fastpath: bool = True

    def with_(self, **kw) -> "PlatformParams":
        """Return a copy with top-level fields replaced."""
        return replace(self, **kw)


DEFAULT_PARAMS = PlatformParams()
