"""Shared plumbing: units, parameters, errors, deterministic RNG."""

from .errors import (
    ArchFault,
    DataAbort,
    DeviceBusy,
    DeviceError,
    GuestPanic,
    HwMmuFault,
    HypercallError,
    PrefetchAbort,
    ReproError,
    ServiceCrashed,
    SimulationError,
    UndefinedInstruction,
)
from .params import (
    DEFAULT_PARAMS,
    CacheParams,
    CpuTiming,
    FpgaParams,
    MemoryMapParams,
    PlatformParams,
    TlbParams,
)
from .rng import make_rng
from .units import (
    KB,
    MB,
    align_down,
    align_up,
    cycles_to_ms,
    cycles_to_us,
    fpga_cycles_to_cpu_cycles,
    hexaddr,
    is_aligned,
    ms_to_cycles,
    us_to_cycles,
)

__all__ = [
    "ArchFault", "ConfigError", "DataAbort", "DeviceBusy", "DeviceError",
    "GuestPanic", "HwMmuFault", "HypercallError", "PrefetchAbort",
    "ReproError", "ServiceCrashed", "SimulationError",
    "UndefinedInstruction",
    "DEFAULT_PARAMS", "CacheParams", "CpuTiming", "FpgaParams",
    "MemoryMapParams", "PlatformParams", "TlbParams",
    "make_rng",
    "KB", "MB", "align_down", "align_up", "cycles_to_ms", "cycles_to_us",
    "fpga_cycles_to_cpu_cycles", "hexaddr", "is_aligned", "ms_to_cycles",
    "us_to_cycles",
]


def __getattr__(name: str):  # deprecation alias, re-warns via .errors
    if name == "ConfigError":
        from . import errors
        return errors.ConfigError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
