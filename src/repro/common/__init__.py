"""Shared plumbing: units, parameters, errors, deterministic RNG."""

from .errors import (
    ArchFault,
    ConfigError,
    DataAbort,
    GuestPanic,
    HwMmuFault,
    HypercallError,
    PrefetchAbort,
    ReproError,
    SimulationError,
    UndefinedInstruction,
)
from .params import (
    DEFAULT_PARAMS,
    CacheParams,
    CpuTiming,
    FpgaParams,
    MemoryMapParams,
    PlatformParams,
    TlbParams,
)
from .rng import make_rng
from .units import (
    KB,
    MB,
    align_down,
    align_up,
    cycles_to_ms,
    cycles_to_us,
    fpga_cycles_to_cpu_cycles,
    hexaddr,
    is_aligned,
    ms_to_cycles,
    us_to_cycles,
)

__all__ = [
    "ArchFault", "ConfigError", "DataAbort", "GuestPanic", "HwMmuFault",
    "HypercallError", "PrefetchAbort", "ReproError", "SimulationError",
    "UndefinedInstruction",
    "DEFAULT_PARAMS", "CacheParams", "CpuTiming", "FpgaParams",
    "MemoryMapParams", "PlatformParams", "TlbParams",
    "make_rng",
    "KB", "MB", "align_down", "align_up", "cycles_to_ms", "cycles_to_us",
    "fpga_cycles_to_cpu_cycles", "hexaddr", "is_aligned", "ms_to_cycles",
    "us_to_cycles",
]
