"""Deterministic random-number plumbing.

Every stochastic element of the simulation (T_hw task selection, workload
access patterns) draws from a generator seeded through here, so a whole
experiment is reproducible from a single integer seed.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0x5EED_0A9


def make_rng(seed: int | None = None, *, stream: str = "") -> np.random.Generator:
    """Create an independent generator for a named stream.

    Different ``stream`` names yield decorrelated sequences from the same
    root seed (via :class:`numpy.random.SeedSequence` spawn keys derived
    from the stream name), so adding a consumer never perturbs the draws
    of existing ones.
    """
    root = DEFAULT_SEED if seed is None else seed
    key = [b for b in stream.encode()] or [0]
    return np.random.default_rng(np.random.SeedSequence(entropy=root, spawn_key=key))
