"""Exception hierarchy for the Mini-NOVA reproduction.

Faults that model *architectural* events (aborts, undefined instructions)
are distinct from host-level programming errors: the former are caught by
the simulated exception machinery, the latter should propagate to pytest.
"""

from __future__ import annotations

import warnings


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SimulationError(ReproError):
    """The discrete-event engine reached an impossible state."""


class DeviceError(ReproError):
    """A modelled device or service (PCAP, PRR controller, manager...)
    failed an operation, or was configured inconsistently.

    Subsumes the retired ``ConfigError``: importing that name still works
    but resolves to this class and emits a :class:`DeprecationWarning`.
    """


class DeviceBusy(DeviceError):
    """The device is already servicing a request."""


class ServiceCrashed(DeviceError):
    """A user-level service PD died mid-request (injected or detected).

    Raised out of the ManagerService's step path when a ``service.crash``
    fault fires at one of its named crashpoints; the kernel run loop
    catches it and hands the dead PD to the :class:`ManagerSupervisor`.
    """

    def __init__(self, point: str) -> None:
        super().__init__(f"service crashed at crashpoint {point!r}")
        self.point = point


class MemoryError_(ReproError):
    """Host-level memory-map misuse (overlapping regions, bad ranges)."""


class ArchFault(ReproError):
    """Base class for faults that the simulated CPU traps architecturally."""

    #: CPU mode the fault is taken in (see :mod:`repro.cpu.modes`).
    trap_mode: str = "abt"


class DataAbort(ArchFault):
    """Illegal data access: permission denied, translation fault, ..."""

    trap_mode = "abt"

    def __init__(self, vaddr: int, reason: str, *, write: bool = False) -> None:
        super().__init__(f"data abort @ {vaddr:#010x} ({reason}, {'write' if write else 'read'})")
        self.vaddr = vaddr
        self.reason = reason
        self.write = write


class PrefetchAbort(ArchFault):
    """Illegal instruction fetch."""

    trap_mode = "abt"

    def __init__(self, vaddr: int, reason: str) -> None:
        super().__init__(f"prefetch abort @ {vaddr:#010x} ({reason})")
        self.vaddr = vaddr
        self.reason = reason


class UndefinedInstruction(ArchFault):
    """Privileged/unavailable instruction executed (e.g. CP15 from PL0, VFP off)."""

    trap_mode = "und"

    def __init__(self, what: str) -> None:
        super().__init__(f"undefined instruction: {what}")
        self.what = what


class HwMmuFault(ReproError):
    """A hardware task's DMA access fell outside its client's data section.

    Raised by the PRR controller's hwMMU (Section IV-C of the paper); the
    PRR controller converts it into an error status + blocked transfer, so
    it never reaches the CPU as an exception.
    """

    def __init__(self, prr_id: int, paddr: int, lo: int, hi: int) -> None:
        super().__init__(
            f"hwMMU: PRR{prr_id} access @ {paddr:#010x} outside section [{lo:#010x}, {hi:#010x})"
        )
        self.prr_id = prr_id
        self.paddr = paddr
        self.lo = lo
        self.hi = hi


class HypercallError(ReproError):
    """Malformed hypercall (bad number / arguments); maps to an error status."""


class GuestPanic(ReproError):
    """A guest OS hit an unrecoverable internal error."""


def __getattr__(name: str):  # PEP 562 deprecation alias
    if name == "ConfigError":
        warnings.warn(
            "ConfigError is deprecated; use DeviceError "
            "(repro.common.errors.DeviceError) instead",
            DeprecationWarning, stacklevel=2)
        return DeviceError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
