"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``      — run a virtualized (or native) scenario and print a report;
  ``--trace-out FILE`` additionally writes a Chrome trace-event JSON
  (load it in chrome://tracing or https://ui.perfetto.dev) and
  ``--metrics`` prints the kernel's counter/histogram registry
  (see docs/OBSERVABILITY.md for the event and metric catalog)
* ``table3``   — regenerate Table III (+ Fig. 9) and print both
* ``bench``    — run the paper scenario and write a schema-versioned
  ``BENCH_<name>.json`` latency/accounting artifact (``--quick`` for the
  CI smoke profile; see docs/BENCHMARKS.md and tools/bench_compare.py)
* ``inventory``— list the hardware-task library and the fabric floorplan
* ``faults``   — run the deterministic fault-injection matrix
  (``--list`` for the scenario and fault-site catalogs, ``--scenario
  NAME|all`` to execute; output is seeded, sorted-keys JSON —
  byte-identical across runs, which the CI ``fault-matrix`` job checks.
  See docs/FAULTS.md)
* ``soak``     — run the fault matrix while crashing/hanging the Hardware
  Task Manager at seeded points, asserting the recovery invariants after
  every run (``--crashes N`` sets the fault budget; ``--vm-kills N``
  runs the VM crash/restore soak instead; docs/RECOVERY.md)
* ``fleet``    — run a supervised multi-board fleet with open-loop tenant
  traffic (docs/FLEET.md): placement, heartbeat failure detection and
  checkpoint-based live migration across board fault domains.
  ``--soak-board-kills N`` runs the chaos soak, ``--soak-surge`` runs
  the overload surge soak (admission control, retry budgets, brownout;
  docs/FLEET.md §11), ``--migration-demo`` proves a cross-board
  migration bit-exact, ``--bench`` writes the
  ``BENCH_fleet_quick.json`` latency artifact
* ``explore``  — coverage-guided fault-space exploration (docs/FAULTS.md
  §5): a clean pilot harvests trigger windows, then single- and
  two-fault schedules are executed deterministically under ``--budget``
  with invariant sweeps as the oracle, gated on a recovery-path
  coverage floor; failing schedules are delta-debugged to minimal
  repro JSONs replayable via ``--repro``
* ``postmortem`` — validate and pretty-print a flight-recorder bundle
  (docs/OBSERVABILITY.md §13)

``soak``, ``fleet`` and ``explore`` distinguish failure classes in
their exit code: an actual invariant violation (the flight recorder
fired) exits 4, any other failed check exits 1, and an ``explore`` run
that is clean but misses its coverage floor exits 3
(docs/RECOVERY.md §10).

``run``, ``bench`` and ``soak`` take ``--stream-out FILE`` to write the
JSONL telemetry stream (deterministic metric deltas at a sim-cycle
cadence — docs/OBSERVABILITY.md §10) and ``run``/``bench`` take ``--slo
FILE`` to evaluate a declarative SLO config on it; any breach exits
with status 3.  ``run`` and ``faults`` keep a flight recorder armed:
an invariant violation, failed check or unhandled exception dumps a
post-mortem bundle (default ``FLIGHT_<cmd>.json``; ``--flight-out``
overrides, and on ``soak`` enables it).
"""

from __future__ import annotations

import argparse
import sys

from .common.units import cycles_to_ms


def _open_stream(sc, args, *, source: str):
    """Build the stream + SLO engine a CLI run asked for (or (None,)*3).

    Returns ``(stream, engine, sink)``; exits with code 2 via
    SystemExit on an unreadable SLO config.
    """
    if not (args.stream_out or args.slo):
        return None, None, None
    from .common.units import ms_to_cycles
    from .obs.slo import SloEngine, load_slo_config
    from .obs.stream import TelemetryStream

    sink = None
    if args.stream_out:
        try:
            sink = open(args.stream_out, "w", encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot write stream to {args.stream_out}: {exc}",
                  file=sys.stderr)
            raise SystemExit(2)
    stream = TelemetryStream(
        sc.metrics,
        interval_cycles=ms_to_cycles(args.stream_interval_ms,
                                     sc.machine.params.cpu.hz),
        sink=sink, source=source, seed=args.seed)
    engine = None
    if args.slo:
        try:
            rules = load_slo_config(args.slo)
        except (OSError, ValueError) as exc:
            if sink is not None:
                sink.close()
            print(f"error: bad SLO config {args.slo}: {exc}",
                  file=sys.stderr)
            raise SystemExit(2)
        engine = SloEngine(rules, metrics=sc.metrics)
        engine.attach(stream)
    stream.attach(sc.machine.sim)
    return stream, engine, sink


def _report_slo(engine) -> int:
    """Print the SLO verdict; return the command exit code."""
    from .obs.slo import EXIT_SLO_BREACH

    s = engine.summary()
    if engine.ok:
        print(f"SLO: {len(s['rules'])} rule(s), {s['evaluations']} "
              f"evaluations, no breaches")
        return 0
    print(f"SLO BREACH: {len(s['breaches'])} breach(es) across "
          f"{len(s['rules'])} rule(s)", file=sys.stderr)
    for b in s["breaches"]:
        print(f"  {b['slo']} ({b['kind']}) at cycle {b['t']}: "
              f"observed {b['observed']} vs limit {b['limit']}",
              file=sys.stderr)
    return EXIT_SLO_BREACH


def cmd_run(args: argparse.Namespace) -> int:
    from .eval.report import scenario_report
    from .eval.scenarios import build_native, build_virtualized
    from .kernel.core import KernelConfig

    if args.native:
        sc = build_native(seed=args.seed, verify=args.verify)
    else:
        kcfg = KernelConfig(trace_verbose=args.trace_verbose)
        sc = build_virtualized(args.guests, seed=args.seed,
                               verify=args.verify, kernel_config=kcfg)
        # Always-on incident recording: a violation or crash during the
        # run dumps a deterministic post-mortem bundle (§13).
        from .obs.flight import FlightRecorder
        FlightRecorder(args.flight_out or "FLIGHT_run.json").arm(
            sc.kernel, seed=args.seed,
            context={"command": "run", "guests": args.guests, "ms": args.ms})
    stream, engine, sink = _open_stream(sc, args, source="run")
    try:
        sc.run_ms(args.ms)
    finally:
        if stream is not None:
            stream.close()
        if sink is not None:
            sink.close()
    print(scenario_report(sc))
    if args.trace_out:
        from .obs.export import write_chrome_trace
        try:
            n = write_chrome_trace(sc.tracer, args.trace_out,
                                   hz=sc.machine.params.cpu.hz)
        except OSError as exc:
            print(f"error: cannot write trace to {args.trace_out}: {exc}",
                  file=sys.stderr)
            return 1
        dropped = sc.tracer.dropped
        print(f"\nwrote {n} trace events to {args.trace_out}"
              + (f" ({dropped} oldest events dropped by the ring)"
                 if dropped else ""))
    if args.metrics:
        print()
        print(sc.metrics.render())
    if stream is not None and args.stream_out:
        print(f"wrote {stream.records} telemetry records "
              f"({stream.deltas} deltas) to {args.stream_out}")
    if engine is not None:
        return _report_slo(engine)
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    from .eval.fig9 import degradation_from_table3
    from .eval.table3 import run_table3

    t3 = run_table3(completions_per_config=args.completions, seed=args.seed)
    print(t3.format())
    print()
    print(degradation_from_table3(t3).format())
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from .eval.bench import default_artifact_path, run_bench, write_bench
    from .obs.analytics import SeriesSummary

    name = "quick" if args.quick else args.name
    slo_rules = None
    if args.slo:
        from .obs.slo import load_slo_config

        try:
            slo_rules = load_slo_config(args.slo)
        except (OSError, ValueError) as exc:
            print(f"error: bad SLO config {args.slo}: {exc}",
                  file=sys.stderr)
            return 2
    payload = run_bench(name, guests=args.guests, ms=args.ms, seed=args.seed,
                        stream_out=args.stream_out,
                        stream_interval_ms=args.stream_interval_ms,
                        slo_rules=slo_rules)
    out = args.out or default_artifact_path(name)
    try:
        write_bench(payload, out)
    except OSError as exc:
        print(f"error: cannot write benchmark artifact to {out}: {exc}",
              file=sys.stderr)
        return 1
    hz = payload["scenario"]["cpu_hz"]
    print(f"bench '{name}': {payload['scenario']['guests']} guests, "
          f"{payload['scenario']['ms']:g} ms simulated "
          f"({payload['totals']['cycles']} cycles) -> {out}")
    print(f"{'series':26} {'count':>6} {'p50':>10} {'p90':>10} "
          f"{'p99':>10}  unit")
    for sname, s in payload["series"].items():
        if not s["count"] or "value" in s:
            continue                      # value series printed below
        us = SeriesSummary(**s).scaled(1e6 / hz, "us")
        print(f"{sname:26} {us.count:>6} {us.p50:>10.2f} {us.p90:>10.2f} "
              f"{us.p99:>10.2f}  {us.unit}")
    cps = payload["series"]["sim_cycles_per_sec"]["value"]
    wall = payload["series"]["wall_clock_s"]["value"]
    print(f"throughput: {cps:,.0f} simulated cycles per host second "
          f"(run phase {wall:.3f} s wall)")
    acct = payload["accounting"]
    print(f"accounting: {len(acct['vms'])} VMs, "
          f"kernel {acct['kernel_cycles']} cycles, "
          f"idle {acct['idle_cycles']} cycles, "
          f"accounted {acct['total_accounted']} cycles")
    if args.stream_out:
        print(f"wrote telemetry stream to {args.stream_out}")
    if "slo" in payload:
        from .obs.slo import EXIT_SLO_BREACH

        s = payload["slo"]
        if s["ok"]:
            print(f"SLO: {len(s['rules'])} rule(s), {s['evaluations']} "
                  f"evaluations, no breaches")
        else:
            print(f"SLO BREACH: {len(s['breaches'])} breach(es)",
                  file=sys.stderr)
            for b in s["breaches"]:
                print(f"  {b['slo']} ({b['kind']}) at cycle {b['t']}: "
                      f"observed {b['observed']} vs limit {b['limit']}",
                      file=sys.stderr)
            return EXIT_SLO_BREACH
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import json

    from .faults.matrix import SCENARIOS, run_all, run_scenario

    if args.list_sites:
        from .faults.registry import SITES

        print("fault sites (FaultSpec.site; docs/FAULTS.md §1):")
        for name, s in SITES.items():
            print(f"  {name:22s} [{s.layer}] {s.effect}")
            if s.targets:
                print(f"  {'':22s}   {s.target_param}: "
                      f"{', '.join(s.targets)}")
            print(f"  {'':22s}   recovery: {', '.join(s.recovery_paths)}")
        return 0
    if args.list:
        from .faults.plan import SITE_EFFECTS

        print("fault scenarios (docs/FAULTS.md):")
        for name, fn in SCENARIOS.items():
            doc = (fn.__doc__ or "").strip().split("\n")[0]
            print(f"  {name:14s} {doc}")
        print()
        print("fault sites (FaultSpec.site):")
        for site, effect in SITE_EFFECTS.items():
            print(f"  {site:22s} {effect}")
        return 0
    flight_path = args.flight_out or "FLIGHT_faults.json"
    if args.scenario == "all":
        payload = run_all(args.seed, flight_path=flight_path)
    else:
        try:
            payload = run_scenario(args.scenario, args.seed,
                                   flight_path=flight_path)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as f:
                f.write(text)
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    ok = payload["ok"]
    if not ok:
        print("FAULT MATRIX: one or more checks failed "
              f"(post-mortem bundle: {flight_path})", file=sys.stderr)
    return 0 if ok else 1


def cmd_soak(args: argparse.Namespace) -> int:
    import json

    from .faults.soak import run_soak, run_vm_soak

    stream = sink = None
    if args.stream_out:
        from .obs.stream import TelemetryStream

        try:
            sink = open(args.stream_out, "w", encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot write stream to {args.stream_out}: {exc}",
                  file=sys.stderr)
            return 2
        # A pure record bus: the soak emits one ``shard`` snapshot per
        # run plus the merged ``aggregate`` fleet view.
        stream = TelemetryStream(None, interval_cycles=1, sink=sink,
                                 source="soak", seed=args.seed)
    try:
        if args.vm_kills is not None:
            payload = run_vm_soak(seed=args.seed, kills=args.vm_kills,
                                  max_runs=args.max_runs, stream=stream,
                                  flight_path=args.flight_out)
        else:
            payload = run_soak(seed=args.seed, crashes=args.crashes,
                               max_runs=args.max_runs, stream=stream,
                               flight_path=args.flight_out)
    finally:
        if stream is not None:
            stream.close()
        if sink is not None:
            sink.close()
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as f:
                f.write(text)
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    t = payload["totals"]
    if args.vm_kills is not None:
        print(f"vm-soak: {t['runs']} runs, {t['vms_killed']} VMs killed, "
              f"{t['restarts']} restarts, {t['halts']} halts, "
              f"{t['invariant_violations']} invariant violations",
              file=sys.stderr)
    else:
        print(f"soak: {t['runs']} runs, {t['faults_fired']} manager faults, "
              f"{t['restarts']} restarts, "
              f"{t['invariant_violations']} invariant violations",
              file=sys.stderr)
    if args.stream_out and stream is not None:
        print(f"wrote {stream.records} telemetry records "
              f"to {args.stream_out}", file=sys.stderr)
    from .faults.soak import incident_exit_code
    if payload["incident"] is not None:
        print(f"SOAK: {payload['incident']}", file=sys.stderr)
    return incident_exit_code(payload)


def cmd_fleet(args: argparse.Namespace) -> int:
    import json

    from .faults.soak import incident_exit_code
    from .fleet.dispatcher import FleetConfig
    from .fleet.harness import (make_kill_schedule, run_fleet,
                                run_fleet_bench, run_fleet_soak,
                                run_migration_demo, run_surge_soak)

    if args.migration_demo:
        demo = run_migration_demo(seed=args.seed, workers=args.workers)
        print(json.dumps(demo, indent=2, sort_keys=True))
        if not demo["ok"]:
            print("MIGRATION DEMO: resumed output not bit-exact or "
                  "tenant did not finish", file=sys.stderr)
        return 0 if demo["ok"] else 1

    if args.bench:
        from .eval.bench import default_artifact_path, write_bench

        payload = run_fleet_bench(seed=args.seed, workers=args.workers)
        out = args.out or default_artifact_path(payload["name"])
        try:
            write_bench(payload, out)
        except OSError as exc:
            print(f"error: cannot write benchmark artifact to {out}: {exc}",
                  file=sys.stderr)
            return 1
        lat = payload["series"]["fleet_request_latency_cycles"]
        print(f"fleet bench: {lat['count']} requests served, "
              f"p50 {lat['p50']:.0f} / p99 {lat['p99']:.0f} cycles -> {out}")
        return 0

    stream = sink = None
    if args.stream_out:
        from .obs.stream import TelemetryStream

        try:
            sink = open(args.stream_out, "w", encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot write stream to {args.stream_out}: {exc}",
                  file=sys.stderr)
            return 2
        # Record bus: one ``shard`` snapshot per board (or per soak run)
        # plus the merged ``aggregate`` fleet view.
        stream = TelemetryStream(None, interval_cycles=1, sink=sink,
                                 source="fleet", seed=args.seed)
    try:
        if args.soak_surge:
            # The surge soak is a fixed, calibrated scenario (escalating
            # surge factors against a tuned admission config), so it
            # takes only the seed and worker mode from the CLI.
            payload = run_surge_soak(seed=args.seed, workers=args.workers,
                                     stream=stream,
                                     flight_path=args.flight_out)
        elif args.soak_board_kills is not None:
            payload = run_fleet_soak(
                seed=args.seed, board_kills=args.soak_board_kills,
                boards=args.boards, workers=args.workers,
                ticks=args.ticks, tenants_per_board=args.tenants_per_board,
                stream=stream, flight_path=args.flight_out)
        else:
            cfg = FleetConfig(boards=args.boards, seed=args.seed,
                              ticks=args.ticks, tick_ms=args.tick_ms,
                              tenants_per_board=args.tenants_per_board,
                              rate_per_tick=args.rate,
                              workers=args.workers)
            kills = (make_kill_schedule(cfg, kills=args.kills)
                     if args.kills else ())
            payload = run_fleet(cfg, kills=kills, stream=stream,
                                flight_path=args.flight_out)
    finally:
        if stream is not None:
            stream.close()
        if sink is not None:
            sink.close()
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as f:
                f.write(text)
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    if args.soak_surge:
        s = payload["slo"]
        print(f"surge-soak: {len(payload['runs'])} loaded runs, "
              f"critical p99 {s['critical_p99']['worst']} vs baseline "
              f"{s['critical_p99']['baseline']} (slack "
              f"{s['critical_p99']['slack']}), goodput ratio "
              f"{s['critical_goodput_floor']['worst']} (floor "
              f"{s['critical_goodput_floor']['min_ratio']}), "
              f"{len(payload['violations'])} invariant violations",
              file=sys.stderr)
    elif args.soak_board_kills is not None:
        t = payload["totals"]
        print(f"fleet-soak: {t['runs']} runs, {t['kills_fired']} board "
              f"kills, {t['migrations']} migrations, "
              f"{t['tenants_shed']} tenants shed, "
              f"{t['invariant_violations']} invariant violations",
              file=sys.stderr)
    else:
        f = payload["fleet"]
        r = payload["requests"]
        print(f"fleet: {len(payload['kills_fired'])} kills fired, "
              f"{f['boards_declared_dead']} boards declared dead, "
              f"{f['migrations']} migrations, {r['served']} requests "
              f"served, {len(payload['violations'])} violations",
              file=sys.stderr)
    if args.stream_out and stream is not None:
        print(f"wrote {stream.records} telemetry records "
              f"to {args.stream_out}", file=sys.stderr)
    if args.soak_surge or args.soak_board_kills is not None:
        if payload["incident"] is not None:
            print(f"FLEET-SOAK: {payload['incident']}", file=sys.stderr)
        return incident_exit_code(payload)
    if not payload["ok"]:
        reason = ("invariant_violation" if payload["violations"]
                  or any(payload["board_violations"].values())
                  else "checks_failed")
        print(f"FLEET: {reason}", file=sys.stderr)
        return incident_exit_code({"incident": reason})
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    import json
    import os

    from .faults.explore import replay_repro, run_explore
    from .faults.soak import incident_exit_code

    if args.repro:
        try:
            with open(args.repro, encoding="utf-8") as f:
                repro = json.load(f)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read repro {args.repro}: {exc}",
                  file=sys.stderr)
            return 2
        try:
            result = replay_repro(repro, flight_path=args.flight_out)
        except (KeyError, ValueError) as exc:
            print(f"error: malformed repro {args.repro}: {exc}",
                  file=sys.stderr)
            return 2
        print(json.dumps(result, indent=2, sort_keys=True))
        if result["reproduced"]:
            print("REPRO: failure reproduced byte-identically",
                  file=sys.stderr)
            return 0
        print("REPRO: did not reproduce (deterministic="
              f"{result['deterministic']}, still_failing="
              f"{result['still_failing']})", file=sys.stderr)
        return 1

    stream = sink = None
    if args.stream_out:
        from .obs.stream import TelemetryStream

        try:
            sink = open(args.stream_out, "w", encoding="utf-8")
        except OSError as exc:
            print(f"error: cannot write stream to {args.stream_out}: {exc}",
                  file=sys.stderr)
            return 2
        # Record bus: one ``explore_schedule`` record per executed
        # schedule, one ``explore_failure`` per shrunk failure.
        stream = TelemetryStream(None, interval_cycles=1, sink=sink,
                                 source="explore", seed=args.seed)
    try:
        try:
            payload = run_explore(
                budget=args.budget, seed=args.seed,
                floor=args.coverage_floor, mutate=args.mutate,
                include_fleet=not args.no_fleet, stream=stream,
                flight_path=args.flight_out)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    finally:
        if stream is not None:
            stream.close()
        if sink is not None:
            sink.close()
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as f:
                f.write(text)
        except OSError as exc:
            print(f"error: cannot write {args.out}: {exc}", file=sys.stderr)
            return 1
        print(f"wrote {args.out}")
    else:
        sys.stdout.write(text)
    if args.repro_out and payload["repros"]:
        try:
            os.makedirs(args.repro_out, exist_ok=True)
            for repro in payload["repros"]:
                path = os.path.join(
                    args.repro_out, f"REPRO_{repro['from_schedule']}.json")
                with open(path, "w", encoding="utf-8") as f:
                    json.dump(repro, f, indent=2, sort_keys=True)
                    f.write("\n")
                print(f"wrote {path}", file=sys.stderr)
        except OSError as exc:
            print(f"error: cannot write repros to {args.repro_out}: {exc}",
                  file=sys.stderr)
            return 1
    t = payload["totals"]
    cov = payload["coverage"]
    print(f"explore: {t['executed']} schedules ({t['singles']} singles, "
          f"{t['pairs']} pairs), {t['failures']} failures, "
          f"sites {cov['site_fraction']:.0%}, "
          f"paths {cov['path_fraction']:.0%} "
          f"(floor {cov['floor']:.0%})", file=sys.stderr)
    if args.stream_out and stream is not None:
        print(f"wrote {stream.records} telemetry records "
              f"to {args.stream_out}", file=sys.stderr)
    if payload["incident"] is not None:
        print(f"EXPLORE: {payload['incident']}", file=sys.stderr)
    return incident_exit_code(payload)


def cmd_postmortem(args: argparse.Namespace) -> int:
    import json

    from .obs.flight import load_bundle, render_bundle, validate_bundle

    try:
        bundle = load_bundle(args.bundle)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read bundle {args.bundle}: {exc}",
              file=sys.stderr)
        return 2
    problems = validate_bundle(bundle)
    if problems:
        print(f"invalid post-mortem bundle {args.bundle}:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(bundle, indent=2, sort_keys=True))
    else:
        print(render_bundle(bundle))
    return 0


def cmd_inventory(args: argparse.Namespace) -> int:
    from .machine import Machine

    m = Machine()
    print("hardware-task library:")
    for name in sorted(m.bitstreams.tasks()):
        core = m.bitstreams.core(name)
        bit = m.bitstreams.get(name)
        fits = [p.prr_id for p in m.prrs if core.resources.fits_in(p.capacity)]
        ms = cycles_to_ms(m.pcap.transfer_cycles(bit.size), m.params.cpu.hz)
        print(f"  {name:8s} bitstream {bit.size:>7d} B  reconfig {ms:5.2f} ms"
              f"  PRRs {fits}")
    print("fabric floorplan:")
    for p in m.prrs:
        c = p.capacity
        print(f"  PRR{p.prr_id}: {c.luts} LUTs, {c.bram} BRAM, {c.dsp} DSP")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    p_run = sub.add_parser("run", help="run a scenario and print a report")
    p_run.add_argument("--guests", type=int, default=2)
    p_run.add_argument("--native", action="store_true")
    p_run.add_argument("--ms", type=float, default=200.0,
                       help="simulated milliseconds")
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--verify", action="store_true",
                       help="check every hardware result against the golden model")
    p_run.add_argument("--trace-out", metavar="FILE", default=None,
                       help="write a Chrome trace-event JSON "
                            "(chrome://tracing / Perfetto) after the run")
    p_run.add_argument("--trace-verbose", action="store_true",
                       help="also emit high-rate events (per-hypercall, "
                            "per-vIRQ; see docs/OBSERVABILITY.md)")
    p_run.add_argument("--metrics", action="store_true",
                       help="print the kernel metrics registry "
                            "(counters, gauges, histograms)")
    _add_stream_args(p_run)
    p_run.add_argument("--slo", metavar="FILE", default=None,
                       help="evaluate a declarative SLO config on the "
                            "stream; any breach exits 3 "
                            "(docs/OBSERVABILITY.md §12)")
    p_run.add_argument("--flight-out", metavar="FILE", default=None,
                       help="post-mortem bundle path "
                            "(default: FLIGHT_run.json)")
    p_run.set_defaults(fn=cmd_run)

    p_t3 = sub.add_parser("table3", help="regenerate Table III and Fig. 9")
    p_t3.add_argument("--completions", type=int, default=50)
    p_t3.add_argument("--seed", type=int, default=1)
    p_t3.set_defaults(fn=cmd_table3)

    p_bench = sub.add_parser(
        "bench", help="run the paper scenario, write BENCH_<name>.json")
    p_bench.add_argument("--name", default="paper",
                         help="bench profile / artifact name (default: paper)")
    p_bench.add_argument("--quick", action="store_true",
                         help="CI smoke profile (fewer guests, shorter run)")
    p_bench.add_argument("--guests", type=int, default=None,
                         help="override the profile's guest count")
    p_bench.add_argument("--ms", type=float, default=None,
                         help="override the profile's simulated milliseconds")
    p_bench.add_argument("--seed", type=int, default=1)
    p_bench.add_argument("--out", metavar="FILE", default=None,
                         help="artifact path (default: BENCH_<name>.json)")
    _add_stream_args(p_bench)
    p_bench.add_argument("--slo", metavar="FILE", default=None,
                         help="evaluate a declarative SLO config on the "
                              "stream; any breach exits 3")
    p_bench.set_defaults(fn=cmd_bench)

    p_inv = sub.add_parser("inventory", help="task library + floorplan")
    p_inv.set_defaults(fn=cmd_inventory)

    p_faults = sub.add_parser(
        "faults", help="run the deterministic fault-injection matrix")
    p_faults.add_argument("--list", action="store_true",
                          help="list the scenario catalog and exit")
    p_faults.add_argument("--list-sites", action="store_true",
                          help="list the fault-site registry (layer, "
                               "valid targets, expected recovery paths) "
                               "and exit")
    p_faults.add_argument("--scenario", default="all", metavar="NAME",
                          help="scenario name, or 'all' (default)")
    p_faults.add_argument("--seed", type=int, default=1)
    p_faults.add_argument("--out", metavar="FILE", default=None,
                          help="write the JSON result to FILE instead of "
                               "stdout")
    p_faults.add_argument("--flight-out", metavar="FILE", default=None,
                          help="post-mortem bundle path, written when a "
                               "scenario's checks fail "
                               "(default: FLIGHT_faults.json)")
    p_faults.set_defaults(fn=cmd_faults)

    p_soak = sub.add_parser(
        "soak", help="fault matrix under seeded manager crashes "
                     "(docs/RECOVERY.md)")
    p_soak.add_argument("--seed", type=int, default=1)
    p_soak.add_argument("--crashes", type=int, default=100,
                        help="run until this many manager faults fired "
                             "(default: 100)")
    p_soak.add_argument("--vm-kills", type=int, default=None, metavar="N",
                        help="run the VM crash/restore soak instead: kill "
                             "guest VMs at seeded points until N kills fired "
                             "(docs/RECOVERY.md §9)")
    p_soak.add_argument("--max-runs", type=int, default=None,
                        help="hard cap on scenario runs (default: 4x faults)")
    p_soak.add_argument("--out", metavar="FILE", default=None,
                        help="write the JSON result to FILE instead of stdout")
    p_soak.add_argument("--stream-out", metavar="FILE", default=None,
                        help="write per-run shard snapshots + the merged "
                             "aggregate view as JSONL telemetry")
    p_soak.add_argument("--flight-out", metavar="FILE", default=None,
                        help="arm a flight recorder: dump a post-mortem "
                             "bundle for the first faulted (or failing) run")
    p_soak.set_defaults(fn=cmd_soak)

    p_fleet = sub.add_parser(
        "fleet", help="supervised multi-board fleet with live migration "
                      "(docs/FLEET.md)")
    p_fleet.add_argument("--boards", type=int, default=4,
                         help="number of boards (default: 4)")
    p_fleet.add_argument("--tenants-per-board", type=int, default=2,
                         help="initial tenants per board (default: 2)")
    p_fleet.add_argument("--ticks", type=int, default=32,
                         help="dispatcher ticks to run (default: 32)")
    p_fleet.add_argument("--tick-ms", type=float, default=2.0,
                         help="simulated milliseconds per tick "
                              "(default: 2.0)")
    p_fleet.add_argument("--seed", type=int, default=1)
    p_fleet.add_argument("--rate", type=float, default=0.1,
                         help="mean request arrivals per tenant per tick "
                              "(default: 0.1)")
    p_fleet.add_argument("--kills", type=int, default=0, metavar="N",
                         help="schedule N seeded board faults in this run "
                              "(crash/hang/partition)")
    p_fleet.add_argument("--workers", choices=("inline", "process"),
                         default="inline",
                         help="board hosting: in-process (deterministic "
                              "default) or one worker process per board")
    p_fleet.add_argument("--soak-board-kills", type=int, default=None,
                         metavar="N",
                         help="run the chaos soak instead: repeat seeded "
                              "fleet runs until N board faults fired, "
                              "sweeping F1-F6 + board invariants each run")
    p_fleet.add_argument("--soak-surge", action="store_true",
                         help="run the overload surge soak instead: a "
                              "baseline pass then escalating seeded "
                              "traffic surges + retry storms + a board "
                              "crash, gating O1-O5/F1-F6, the critical "
                              "p99 SLO and the goodput floor "
                              "(docs/FLEET.md §11)")
    p_fleet.add_argument("--migration-demo", action="store_true",
                         help="run the live-migration acceptance proof: "
                              "crash a board mid-workload, finish on a "
                              "survivor, diff the output bit-exactly")
    p_fleet.add_argument("--bench", action="store_true",
                         help="write the fleet quick-bench artifact "
                              "(BENCH_fleet_quick.json) instead of a "
                              "report")
    p_fleet.add_argument("--out", metavar="FILE", default=None,
                         help="write the JSON result (or bench artifact) "
                              "to FILE instead of stdout")
    p_fleet.add_argument("--stream-out", metavar="FILE", default=None,
                         help="write per-board/per-run shard snapshots + "
                              "the merged aggregate view as JSONL "
                              "telemetry")
    p_fleet.add_argument("--flight-out", metavar="FILE", default=None,
                         help="arm a flight recorder: dump a post-mortem "
                              "bundle from the implicated board on the "
                              "first fleet invariant violation")
    p_fleet.set_defaults(fn=cmd_fleet)

    p_explore = sub.add_parser(
        "explore", help="coverage-guided fault-space exploration with "
                        "delta-debugged minimal repros (docs/FAULTS.md §5)")
    p_explore.add_argument("--budget", type=int, default=150,
                           help="schedule budget: max fault schedules to "
                                "execute (default: 150)")
    p_explore.add_argument("--seed", type=int, default=7)
    p_explore.add_argument("--coverage-floor", type=float, default=0.9,
                           metavar="FRAC",
                           help="minimum fraction of registered recovery "
                                "paths that must fire (default: 0.9; all "
                                "sites must always fire)")
    p_explore.add_argument("--mutate", default=None, metavar="NAME",
                           help="disable one recovery path before every "
                                "inline run (self-test mode; also via "
                                "REPRO_EXPLORE_MUTATE)")
    p_explore.add_argument("--no-fleet", action="store_true",
                           help="skip the board.* fleet schedules")
    p_explore.add_argument("--repro", metavar="FILE", default=None,
                           help="replay a shrunk repro JSON twice and "
                                "verify the byte-identical failure "
                                "instead of exploring")
    p_explore.add_argument("--out", metavar="FILE", default=None,
                           help="write the JSON payload to FILE instead "
                                "of stdout")
    p_explore.add_argument("--repro-out", metavar="DIR", default=None,
                           help="write each shrunk repro as "
                                "DIR/REPRO_<schedule>.json")
    p_explore.add_argument("--stream-out", metavar="FILE", default=None,
                           help="write explore_schedule/explore_failure "
                                "records as JSONL telemetry")
    p_explore.add_argument("--flight-out", metavar="FILE", default=None,
                           help="dump a post-mortem bundle for the first "
                                "failing schedule")
    p_explore.set_defaults(fn=cmd_explore)

    p_pm = sub.add_parser(
        "postmortem", help="validate + pretty-print a flight-recorder "
                           "bundle (docs/OBSERVABILITY.md §13)")
    p_pm.add_argument("bundle", help="bundle path (FLIGHT_*.json)")
    p_pm.add_argument("--json", action="store_true",
                      help="dump the validated bundle as JSON instead of "
                           "the summary")
    p_pm.set_defaults(fn=cmd_postmortem)

    args = ap.parse_args(argv)
    return args.fn(args)


def _add_stream_args(p: argparse.ArgumentParser) -> None:
    from .obs.stream import DEFAULT_INTERVAL_MS

    p.add_argument("--stream-out", metavar="FILE", default=None,
                   help="write the JSONL telemetry stream (deterministic "
                        "metric deltas; docs/OBSERVABILITY.md §10)")
    p.add_argument("--stream-interval-ms", type=float,
                   default=DEFAULT_INTERVAL_MS, metavar="MS",
                   help="emission cadence in simulated milliseconds "
                        f"(default: {DEFAULT_INTERVAL_MS:g})")


if __name__ == "__main__":
    sys.exit(main())
