"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``      — run a virtualized (or native) scenario and print a report
* ``table3``   — regenerate Table III (+ Fig. 9) and print both
* ``inventory``— list the hardware-task library and the fabric floorplan
"""

from __future__ import annotations

import argparse
import sys

from .common.units import cycles_to_ms


def cmd_run(args: argparse.Namespace) -> int:
    from .eval.report import scenario_report
    from .eval.scenarios import build_native, build_virtualized

    if args.native:
        sc = build_native(seed=args.seed, verify=args.verify)
    else:
        sc = build_virtualized(args.guests, seed=args.seed,
                               verify=args.verify)
    sc.run_ms(args.ms)
    print(scenario_report(sc))
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    from .eval.fig9 import degradation_from_table3
    from .eval.table3 import run_table3

    t3 = run_table3(completions_per_config=args.completions, seed=args.seed)
    print(t3.format())
    print()
    print(degradation_from_table3(t3).format())
    return 0


def cmd_inventory(args: argparse.Namespace) -> int:
    from .machine import Machine

    m = Machine()
    print("hardware-task library:")
    for name in sorted(m.bitstreams.tasks()):
        core = m.bitstreams.core(name)
        bit = m.bitstreams.get(name)
        fits = [p.prr_id for p in m.prrs if core.resources.fits_in(p.capacity)]
        ms = cycles_to_ms(m.pcap.transfer_cycles(bit.size), m.params.cpu.hz)
        print(f"  {name:8s} bitstream {bit.size:>7d} B  reconfig {ms:5.2f} ms"
              f"  PRRs {fits}")
    print("fabric floorplan:")
    for p in m.prrs:
        c = p.capacity
        print(f"  PRR{p.prr_id}: {c.luts} LUTs, {c.bram} BRAM, {c.dsp} DSP")
    return 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(prog="python -m repro", description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    p_run = sub.add_parser("run", help="run a scenario and print a report")
    p_run.add_argument("--guests", type=int, default=2)
    p_run.add_argument("--native", action="store_true")
    p_run.add_argument("--ms", type=float, default=200.0,
                       help="simulated milliseconds")
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--verify", action="store_true",
                       help="check every hardware result against the golden model")
    p_run.set_defaults(fn=cmd_run)

    p_t3 = sub.add_parser("table3", help="regenerate Table III and Fig. 9")
    p_t3.add_argument("--completions", type=int, default=50)
    p_t3.add_argument("--seed", type=int, default=1)
    p_t3.set_defaults(fn=cmd_table3)

    p_inv = sub.add_parser("inventory", help="task library + floorplan")
    p_inv.set_defaults(fn=cmd_inventory)

    args = ap.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
