"""Interrupt ID map of the modelled platform (Zynq-7000-flavoured).

IDs follow the GIC convention: 0-15 SGIs, 16-31 PPIs, 32+ SPIs.  The PL
fabric owns 16 lines (PL_IRQ[15:0], paper Section IV-D) which we place at
61..76; the DevC/PCAP completion interrupt sits at its real Zynq ID (40).
"""

from __future__ import annotations

#: Total interrupt IDs the distributor tracks.
N_IRQS = 96

#: Private timer (per-core PPI on the real MPCore).
IRQ_PRIVATE_TIMER = 29

#: DevC / PCAP "configuration DONE" interrupt (Zynq SPI #40).
IRQ_PCAP_DONE = 40

#: UART0 (used by the console model).
IRQ_UART0 = 59

#: First of the 16 PL-to-PS lines reserved for hardware tasks.
IRQ_PL_BASE = 61
N_PL_IRQS = 16

#: Read of ICCIAR when nothing is pending.
SPURIOUS_IRQ = 1023


def pl_irq(line: int) -> int:
    """GIC ID of PL_IRQ[line]."""
    if not 0 <= line < N_PL_IRQS:
        raise ValueError(f"PL IRQ line {line} out of range")
    return IRQ_PL_BASE + line


def pl_line(irq_id: int) -> int | None:
    """Inverse of :func:`pl_irq`; None when the ID is not a PL line."""
    if IRQ_PL_BASE <= irq_id < IRQ_PL_BASE + N_PL_IRQS:
        return irq_id - IRQ_PL_BASE
    return None
