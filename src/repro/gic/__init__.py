"""Generic Interrupt Controller model and the platform IRQ map."""

from .gic import GIC_WINDOW_SIZE, Gic
from .irqs import (
    IRQ_PCAP_DONE,
    IRQ_PL_BASE,
    IRQ_PRIVATE_TIMER,
    IRQ_UART0,
    N_IRQS,
    N_PL_IRQS,
    SPURIOUS_IRQ,
    pl_irq,
    pl_line,
)

__all__ = [
    "GIC_WINDOW_SIZE", "Gic", "IRQ_PCAP_DONE", "IRQ_PL_BASE",
    "IRQ_PRIVATE_TIMER", "IRQ_UART0", "N_IRQS", "N_PL_IRQS", "SPURIOUS_IRQ",
    "pl_irq", "pl_line",
]
