"""Generic Interrupt Controller model (PL390-style distributor + CPU interface).

Functionally faithful where the paper depends on it: per-ID enable bits
(the kernel masks/unmasks whole VM IRQ sets on every switch, Section
III-B), pending/active state, priority-ordered ACK, EOI, and a spurious
ID.  Exposed both as a Python API (for devices raising lines) and as an
MMIO register file (the kernel reads ICCIAR / writes ICCEOIR through the
timed bus like real driver code would).
"""

from __future__ import annotations

from typing import Callable

from ..common.errors import DeviceError
from .irqs import N_IRQS, SPURIOUS_IRQ

# Register offsets (relative to the GIC window base).
# CPU interface:
ICCICR = 0x000    # CPU interface control
ICCPMR = 0x004    # priority mask
ICCIAR = 0x00C    # interrupt acknowledge (read)
ICCEOIR = 0x010   # end of interrupt (write)
# Distributor (0x1000..):
DIST = 0x1000
ICDDCR = DIST + 0x000          # distributor control
ICDISER = DIST + 0x100         # set-enable, 3 words
ICDICER = DIST + 0x180         # clear-enable, 3 words
ICDISPR = DIST + 0x200         # set-pending, 3 words
ICDICPR = DIST + 0x280         # clear-pending, 3 words
ICDIPR = DIST + 0x400          # priority, byte per ID (word access)

GIC_WINDOW_SIZE = 0x2000


class Gic:
    """Single-CPU-target GIC with ``N_IRQS`` interrupt IDs."""

    def __init__(self, n_irqs: int = N_IRQS) -> None:
        if n_irqs % 32:
            raise DeviceError("n_irqs must be a multiple of 32")
        self.n_irqs = n_irqs
        self.enabled = [False] * n_irqs
        self.pending = [False] * n_irqs
        self.active = [False] * n_irqs
        self.priority = [0x80] * n_irqs       # lower value = higher priority
        self.dist_on = True
        self.cpu_iface_on = True
        self.priority_mask = 0xFF
        #: Callback into the CPU model: called with the new line level.
        self.irq_line_cb: Callable[[bool], None] | None = None
        #: Statistics.
        self.asserted = 0
        self.acked = 0
        self.eois = 0

    # -- device-side API -----------------------------------------------------

    def assert_irq(self, irq_id: int) -> None:
        """A device raises its line (edge-triggered model)."""
        self._check_id(irq_id)
        self.pending[irq_id] = True
        self.asserted += 1
        self._update_line()

    def deassert_irq(self, irq_id: int) -> None:
        self._check_id(irq_id)
        self.pending[irq_id] = False
        self._update_line()

    # -- kernel-side API (also reachable via MMIO) ----------------------------

    def set_enable(self, irq_id: int, on: bool) -> None:
        self._check_id(irq_id)
        self.enabled[irq_id] = on
        self._update_line()

    def set_priority(self, irq_id: int, prio: int) -> None:
        self._check_id(irq_id)
        self.priority[irq_id] = prio & 0xFF

    def ack(self) -> int:
        """ICCIAR read: highest-priority pending+enabled ID becomes active."""
        irq = self._best_pending()
        if irq is None:
            return SPURIOUS_IRQ
        self.pending[irq] = False
        self.active[irq] = True
        self.acked += 1
        self._update_line()
        return irq

    def eoi(self, irq_id: int) -> None:
        """ICCEOIR write: drop the active state of ``irq_id``."""
        self._check_id(irq_id)
        self.active[irq_id] = False
        self.eois += 1
        self._update_line()

    def is_pending(self, irq_id: int) -> bool:
        self._check_id(irq_id)
        return self.pending[irq_id]

    # -- internals --------------------------------------------------------------

    def _check_id(self, irq_id: int) -> None:
        if not 0 <= irq_id < self.n_irqs:
            raise DeviceError(f"IRQ id {irq_id} out of range")

    def _best_pending(self) -> int | None:
        if not (self.dist_on and self.cpu_iface_on):
            return None
        best: int | None = None
        for i in range(self.n_irqs):
            if self.pending[i] and self.enabled[i] \
                    and self.priority[i] < self.priority_mask:
                if best is None or self.priority[i] < self.priority[best]:
                    best = i
        return best

    def _update_line(self) -> None:
        level = self._best_pending() is not None
        if self.irq_line_cb is not None:
            self.irq_line_cb(level)

    # -- MMIO register file --------------------------------------------------------

    def mmio_read(self, offset: int) -> int:
        if offset == ICCIAR:
            return self.ack()
        if offset == ICCICR:
            return int(self.cpu_iface_on)
        if offset == ICCPMR:
            return self.priority_mask
        if offset == ICDDCR:
            return int(self.dist_on)
        if ICDISER <= offset < ICDISER + self.n_irqs // 8:
            return self._bits_word(self.enabled, (offset - ICDISER) // 4)
        if ICDISPR <= offset < ICDISPR + self.n_irqs // 8:
            return self._bits_word(self.pending, (offset - ICDISPR) // 4)
        if ICDIPR <= offset < ICDIPR + self.n_irqs:
            word = (offset - ICDIPR) // 4
            val = 0
            for b in range(4):
                val |= self.priority[word * 4 + b] << (8 * b)
            return val
        return 0

    def mmio_write(self, offset: int, value: int) -> None:
        if offset == ICCEOIR:
            self.eoi(value & 0x3FF)
        elif offset == ICCICR:
            self.cpu_iface_on = bool(value & 1)
            self._update_line()
        elif offset == ICCPMR:
            self.priority_mask = value & 0xFF
            self._update_line()
        elif offset == ICDDCR:
            self.dist_on = bool(value & 1)
            self._update_line()
        elif ICDISER <= offset < ICDISER + self.n_irqs // 8:
            self._apply_bits(self.enabled, (offset - ICDISER) // 4, value, True)
        elif ICDICER <= offset < ICDICER + self.n_irqs // 8:
            self._apply_bits(self.enabled, (offset - ICDICER) // 4, value, False)
        elif ICDISPR <= offset < ICDISPR + self.n_irqs // 8:
            self._apply_bits(self.pending, (offset - ICDISPR) // 4, value, True)
        elif ICDICPR <= offset < ICDICPR + self.n_irqs // 8:
            self._apply_bits(self.pending, (offset - ICDICPR) // 4, value, False)
        elif ICDIPR <= offset < ICDIPR + self.n_irqs:
            word = (offset - ICDIPR) // 4
            for b in range(4):
                self.priority[word * 4 + b] = (value >> (8 * b)) & 0xFF

    def _bits_word(self, bits: list[bool], word: int) -> int:
        val = 0
        for b in range(32):
            if bits[word * 32 + b]:
                val |= 1 << b
        return val

    def _apply_bits(self, bits: list[bool], word: int, value: int, on: bool) -> None:
        for b in range(32):
            if value & (1 << b):
                bits[word * 32 + b] = on
        self._update_line()
