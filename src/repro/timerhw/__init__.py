"""Timer hardware models."""

from .timers import TIMER_WINDOW_SIZE, GlobalTimer, PrivateTimer

__all__ = ["TIMER_WINDOW_SIZE", "GlobalTimer", "PrivateTimer"]
