"""Timer hardware: a free-running global counter and a programmable
private timer that raises IRQ 29 through the GIC (MPCore style).

Mini-NOVA multiplexes the single private timer between the scheduler
quantum and the guests' *virtual* timers (Section V-A: the guest's timer
init registers a virtual-timer state with the microkernel).
"""

from __future__ import annotations

from ..gic.gic import Gic
from ..gic.irqs import IRQ_PRIVATE_TIMER
from ..sim.engine import EventHandle, Simulator

# Private timer MMIO offsets (UG585 layout).
PT_LOAD = 0x0
PT_COUNTER = 0x4
PT_CONTROL = 0x8
PT_ISR = 0xC

TIMER_WINDOW_SIZE = 0x100


class GlobalTimer:
    """Free-running 64-bit cycle counter (read-only)."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim

    def read(self) -> int:
        return self.sim.clock.now

    def mmio_read(self, offset: int) -> int:
        now = self.sim.clock.now
        return (now & 0xFFFF_FFFF) if offset == 0 else (now >> 32)

    def mmio_write(self, offset: int, value: int) -> None:
        pass  # read-only in this model


class PrivateTimer:
    """One-shot down-counter; fires IRQ_PRIVATE_TIMER at expiry."""

    def __init__(self, sim: Simulator, gic: Gic) -> None:
        self.sim = sim
        self.gic = gic
        self._event: EventHandle | None = None
        self._deadline: int | None = None
        self.fired = 0

    # -- programming API (kernel-only; also reachable via MMIO) ------------

    def program(self, delay_cycles: int) -> None:
        """(Re)arm the timer to fire ``delay_cycles`` from now."""
        self.cancel()
        self._deadline = self.sim.clock.now + max(1, delay_cycles)
        self._event = self.sim.schedule_at(self._deadline, self._expire,
                                           label="private-timer")

    def cancel(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._deadline = None

    def remaining(self) -> int | None:
        """Cycles until expiry, or None when unarmed."""
        if self._deadline is None:
            return None
        return max(0, self._deadline - self.sim.clock.now)

    @property
    def armed(self) -> bool:
        return self._event is not None and self._event.pending

    def _expire(self) -> None:
        self._event = None
        self._deadline = None
        self.fired += 1
        self.gic.assert_irq(IRQ_PRIVATE_TIMER)

    # -- MMIO ------------------------------------------------------------------

    def mmio_read(self, offset: int) -> int:
        if offset == PT_COUNTER:
            return self.remaining() or 0
        if offset == PT_CONTROL:
            return int(self.armed)
        if offset == PT_ISR:
            return int(self.gic.is_pending(IRQ_PRIVATE_TIMER))
        return 0

    def mmio_write(self, offset: int, value: int) -> None:
        if offset == PT_LOAD:
            self.program(value)
        elif offset == PT_CONTROL and not (value & 1):
            self.cancel()
