"""ARM operating modes and privilege levels (Cortex-A9, no HYP).

The paper (Section III): Mini-NOVA executes in SVC; guests in USR; IRQ/FIQ,
UND and ABT modes trap the three exception classes used to build the
virtualized environment.
"""

from __future__ import annotations

from enum import Enum


class Mode(Enum):
    USR = "usr"
    SVC = "svc"
    IRQ = "irq"
    FIQ = "fiq"
    UND = "und"
    ABT = "abt"
    SYS = "sys"

    @property
    def privileged(self) -> bool:
        """PL1 for every mode except USR (PL0)."""
        return self is not Mode.USR


#: Exception vector table offsets (ARM: base + offset), by taking mode.
VECTOR_OFFSETS = {
    "reset": 0x00,
    "und": 0x04,
    "svc": 0x08,      # SVC call (hypercall entry in Mini-NOVA)
    "pabt": 0x0C,
    "dabt": 0x10,
    "irq": 0x18,
    "fiq": 0x1C,
}

#: Mode an exception class is taken in.
EXCEPTION_MODE = {
    "und": Mode.UND,
    "svc": Mode.SVC,
    "pabt": Mode.ABT,
    "dabt": Mode.ABT,
    "irq": Mode.IRQ,
    "fiq": Mode.FIQ,
}
