"""Behavioural ARM Cortex-A9-style CPU model."""

from .core import Cpu
from .modes import EXCEPTION_MODE, VECTOR_OFFSETS, Mode
from .registers import RegisterFile
from .sysregs import SystemRegisters
from .vfp import VFP_CONTEXT_WORDS, Vfp

__all__ = [
    "Cpu", "EXCEPTION_MODE", "VECTOR_OFFSETS", "Mode", "RegisterFile",
    "SystemRegisters", "VFP_CONTEXT_WORDS", "Vfp",
]
