"""Behavioural CPU core: modes, exception machinery, timed access helpers.

The core does not interpret an ISA.  Kernel and guest routines are Python
code that *narrates* its execution to the core — ``code()`` for instruction
blocks, ``load``/``store``/``read32``/``write32`` for data traffic — and the
core charges cycles onto the simulation clock through the real MMU/cache
models.  Mode and privilege state is fully functional: a USR-mode access to
a privileged page or register faults exactly like hardware would.
"""

from __future__ import annotations

from ..common.errors import SimulationError
from ..common.params import PlatformParams
from ..mem.system import MemorySystem
from ..sim.engine import Simulator
from .modes import EXCEPTION_MODE, VECTOR_OFFSETS, Mode
from .registers import RegisterFile
from .sysregs import SystemRegisters
from .vfp import Vfp

#: ARM instructions per 32-byte I-cache line.
_INSTR_PER_LINE = 8


class Cpu:
    """Single modelled Cortex-A9 core (the paper uses one core of the dual-A9)."""

    def __init__(self, sim: Simulator, mem: MemorySystem,
                 params: PlatformParams) -> None:
        self.sim = sim
        self.mem = mem
        self.params = params
        self.timing = params.cpu
        self.regs = RegisterFile()
        self.sysregs = SystemRegisters(mem.mmu)
        self.vfp = Vfp()
        self.mode = Mode.SVC
        #: CPSR.I equivalent: True while IRQs must not be taken.
        self.irq_masked = True
        #: Asserted by the GIC CPU interface when an enabled IRQ is pending.
        self.irq_line = False
        #: Vector table base (VBAR); kernel installs it at boot.
        self.vbar = 0
        self._mode_stack: list[tuple[Mode, bool]] = []
        #: Cycles attributed per category, for the evaluation probes.
        self.cycle_ledger: dict[str, int] = {}
        self._ledger_key = "boot"

    # -- privilege ----------------------------------------------------------

    @property
    def privileged(self) -> bool:
        return self.mode.privileged

    def set_mode(self, mode: Mode) -> None:
        self.mode = mode
        self.regs.mode = mode

    # -- accounting ---------------------------------------------------------

    def set_ledger(self, key: str) -> str:
        """Route subsequent cycle charges to ``key``; returns previous key."""
        prev, self._ledger_key = self._ledger_key, key
        return prev

    def _charge(self, cycles: int) -> None:
        if cycles:
            self.sim.clock.advance(cycles)
            self.cycle_ledger[self._ledger_key] = \
                self.cycle_ledger.get(self._ledger_key, 0) + cycles

    # -- timed execution helpers ---------------------------------------------

    def instr(self, n: int) -> None:
        """Charge issue cost for ``n`` straight-line instructions (no fetch)."""
        self._charge(self.timing.instr_cycles(n))

    #: Residual cost of a prefetch-covered line miss (the A9's sequential
    #: prefetcher hides most of the latency of straight-line code runs).
    _PREFETCH_COVERED = 10

    def code(self, va: int, n_instr: int) -> None:
        """Execute a code block at ``va``: I-fetches + issue cycles.

        The first line of a block pays its true miss latency; subsequent
        *sequential* lines are prefetch-covered, so long straight-line
        routines don't pay a full miss per 8 instructions.
        """
        lines = max(1, (n_instr + _INSTR_PER_LINE - 1) // _INSTR_PER_LINE)
        line_bytes = self.params.l1i.line
        cyc = 0
        for i in range(lines):
            lat = self.mem.touch(va + i * line_bytes, privileged=self.privileged,
                                 fetch=True)
            cyc += lat if i == 0 else min(lat, self._PREFETCH_COVERED)
        cyc += self.timing.instr_cycles(n_instr)
        self._charge(cyc)

    def load(self, va: int) -> None:
        """Timed load (timing only)."""
        self._charge(self.mem.touch(va, write=False, privileged=self.privileged))

    def store(self, va: int) -> None:
        """Timed store (timing only)."""
        self._charge(self.mem.touch(va, write=True, privileged=self.privileged))

    def touch_range(self, base: int, size: int, *, write: bool = False,
                    stride: int | None = None) -> None:
        """Sequential timed sweep over [base, base+size)."""
        step = stride or self.params.l1d.line
        va = base
        end = base + size
        cyc = 0
        while va < end:
            cyc += self.mem.touch(va, write=write, privileged=self.privileged)
            va += step
        self._charge(cyc)

    def stream_range(self, base: int, size: int, *, write: bool = False) -> None:
        """Streaming access to an *uncached* buffer (e.g. a DMA staging
        section on the non-coherent AXI_HP path): translation is paid per
        page, data moves at line granularity straight to/from DRAM without
        polluting the caches."""
        line = self.params.l1d.line
        lines = max(1, size // line)
        cyc = 0
        # One TLB-visible access per 4 KB page for translation cost.
        va = base
        end = base + size
        while va < end:
            _, c = self.mem.mmu.translate(va, privileged=self.privileged,
                                          write=write)
            cyc += c
            va += 4096
        # Burst transfers: roughly a quarter of the DRAM latency per line.
        cyc += lines * (self.timing.dram // 4)
        self._charge(cyc)

    def read32(self, va: int) -> int:
        """Functional timed 32-bit read."""
        value, cyc = self.mem.read32(va, privileged=self.privileged)
        self._charge(cyc)
        return value

    def write32(self, va: int, value: int) -> None:
        """Functional timed 32-bit write."""
        self._charge(self.mem.write32(va, value, privileged=self.privileged))

    # -- exceptions ------------------------------------------------------------

    def take_exception(self, kind: str) -> None:
        """Architectural exception entry: bank switch, SPSR, vector fetch."""
        if kind not in EXCEPTION_MODE:
            raise SimulationError(f"unknown exception kind {kind!r}")
        target = EXCEPTION_MODE[kind]
        self._mode_stack.append((self.mode, self.irq_masked))
        self.regs.set_spsr(self.regs.cpsr, target)
        self.set_mode(target)
        self.irq_masked = True
        self._charge(self.timing.exception_entry)
        # Vector + first handler line fetch through the I-cache.
        vec = self.vbar + VECTOR_OFFSETS["irq" if kind == "fiq" else kind]
        self._charge(self.mem.touch(vec, privileged=True, fetch=True))

    def return_from_exception(self) -> None:
        """Exception return (movs pc, lr style): restore mode + IRQ mask."""
        if not self._mode_stack:
            raise SimulationError("exception return with empty mode stack")
        mode, masked = self._mode_stack.pop()
        self.set_mode(mode)
        self.irq_masked = masked
        self._charge(self.timing.exception_return)

    @property
    def exception_depth(self) -> int:
        return len(self._mode_stack)

    # -- interrupts --------------------------------------------------------------

    def irq_pending(self) -> bool:
        """True when the GIC asserts IRQ and the CPSR.I mask allows it."""
        return self.irq_line and not self.irq_masked
