"""CP15-style system coprocessor: the privileged-register surface.

Any access from PL0 raises :class:`UndefinedInstruction`, which is the trap
Mini-NOVA relies on to catch a non-paravirtualized sensitive operation
(Section II-A).  Paravirtualized guests never touch these directly — they
issue hypercalls — so in steady state the traps seen here are bugs or
attacks, and the tests assert both directions.
"""

from __future__ import annotations

from ..common.errors import UndefinedInstruction
from ..mem.mmu import Mmu


class SystemRegisters:
    """The subset of CP15 state Mini-NOVA virtualizes (Table I)."""

    #: Registers reachable through :meth:`read` / :meth:`write`.
    NAMES = ("SCTLR", "TTBR0", "DACR", "CONTEXTIDR", "VBAR", "TPIDRPRW")

    def __init__(self, mmu: Mmu) -> None:
        self._mmu = mmu
        self._regs = {n: 0 for n in self.NAMES}

    def read(self, name: str, *, privileged: bool) -> int:
        if not privileged:
            raise UndefinedInstruction(f"CP15 read {name} from PL0")
        if name not in self._regs:
            raise UndefinedInstruction(f"CP15 read of unknown register {name}")
        return self._regs[name]

    def write(self, name: str, value: int, *, privileged: bool) -> None:
        if not privileged:
            raise UndefinedInstruction(f"CP15 write {name} from PL0")
        if name not in self._regs:
            raise UndefinedInstruction(f"CP15 write of unknown register {name}")
        value &= 0xFFFF_FFFF
        self._regs[name] = value
        # Side effects on the MMU model.
        if name == "SCTLR":
            self._mmu.enabled = bool(value & 1)
        elif name == "TTBR0":
            self._mmu.set_ttbr(value)
        elif name == "DACR":
            self._mmu.set_dacr(value)
        elif name == "CONTEXTIDR":
            self._mmu.set_asid(value & 0xFF)

    def snapshot(self) -> dict[str, int]:
        return dict(self._regs)

    def restore(self, snap: dict[str, int], *, privileged: bool = True) -> None:
        for name, value in snap.items():
            self.write(name, value, privileged=privileged)

    #: Words moved by an active CP15 save+restore in a vCPU switch.
    CONTEXT_WORDS = len(NAMES)
