"""Vector Floating-Point unit with lazy context switching (Table I).

The unit holds 32 double registers (256 bytes of context).  Mini-NOVA
disables the VFP on every VM switch instead of saving it; the *first* VFP
instruction of the incoming VM traps (UndefinedInstruction), and only then
does the kernel save the previous owner's bank and restore the new one.
VMs that never touch the VFP therefore never pay for it.
"""

from __future__ import annotations

from ..common.errors import UndefinedInstruction

#: 32 x 64-bit registers + FPSCR/FPEXC => words moved per save or restore.
VFP_CONTEXT_WORDS = 66


class Vfp:
    def __init__(self) -> None:
        self.enabled = False
        #: Identifier of the VM whose register bank is physically loaded
        #: (None until first use).  The kernel compares this with the
        #: running VM on a lazy-switch trap.
        self.owner: int | None = None
        #: Counters for the ablation bench.
        self.traps = 0
        self.saves = 0
        self.restores = 0

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        """Called by the kernel on VM switch (the 'lazy' part)."""
        self.enabled = False

    def execute(self) -> None:
        """A guest VFP instruction; traps when the unit is disabled."""
        if not self.enabled:
            self.traps += 1
            raise UndefinedInstruction("VFP instruction with FPEXC.EN=0")

    def save_bank(self) -> int:
        """Model saving the current bank; returns words moved."""
        self.saves += 1
        return VFP_CONTEXT_WORDS

    def restore_bank(self, owner: int) -> int:
        """Model restoring ``owner``'s bank; returns words moved."""
        self.restores += 1
        self.owner = owner
        return VFP_CONTEXT_WORDS
