"""Banked general-purpose register file.

We do not interpret an ISA, but register *state* matters: hypercall
arguments travel in r0-r3, vCPU switches save/restore this file, and the
FIQ mode banks r8-r12 exactly as the architecture does.  Keeping the
banking faithful lets the vCPU switch-cost model count the real number of
words moved (Table I).
"""

from __future__ import annotations

from .modes import Mode

#: Modes with private SP/LR banks (USR and SYS share one bank).
_BANKED_SP_LR = (Mode.SVC, Mode.IRQ, Mode.FIQ, Mode.UND, Mode.ABT)


class RegisterFile:
    """r0-r15 + CPSR with per-mode banking of sp/lr (and r8-r12 for FIQ)."""

    def __init__(self) -> None:
        self._low = [0] * 8                      # r0-r7, shared
        self._mid_usr = [0] * 5                  # r8-r12, all modes but FIQ
        self._mid_fiq = [0] * 5                  # r8-r12, FIQ bank
        self._sp = {m: 0 for m in _BANKED_SP_LR}
        self._lr = {m: 0 for m in _BANKED_SP_LR}
        self._sp_usr = 0
        self._lr_usr = 0
        self.pc = 0
        self.cpsr = 0
        self._spsr = {m: 0 for m in _BANKED_SP_LR}
        self.mode = Mode.SVC

    # -- numbered access in the current mode -----------------------------

    def get(self, n: int) -> int:
        if n < 8:
            return self._low[n]
        if n < 13:
            bank = self._mid_fiq if self.mode is Mode.FIQ else self._mid_usr
            return bank[n - 8]
        if n == 13:
            return self._sp.get(self.mode, self._sp_usr) if self.mode in self._sp else self._sp_usr
        if n == 14:
            return self._lr[self.mode] if self.mode in self._lr else self._lr_usr
        if n == 15:
            return self.pc
        raise IndexError(f"register r{n}")

    def set(self, n: int, value: int) -> None:
        value &= 0xFFFF_FFFF
        if n < 8:
            self._low[n] = value
        elif n < 13:
            bank = self._mid_fiq if self.mode is Mode.FIQ else self._mid_usr
            bank[n - 8] = value
        elif n == 13:
            if self.mode in self._sp:
                self._sp[self.mode] = value
            else:
                self._sp_usr = value
        elif n == 14:
            if self.mode in self._lr:
                self._lr[self.mode] = value
            else:
                self._lr_usr = value
        elif n == 15:
            self.pc = value
        else:
            raise IndexError(f"register r{n}")

    # -- SPSR --------------------------------------------------------------

    def spsr(self, mode: Mode | None = None) -> int:
        m = mode or self.mode
        if m not in self._spsr:
            raise KeyError(f"mode {m} has no SPSR")
        return self._spsr[m]

    def set_spsr(self, value: int, mode: Mode | None = None) -> None:
        m = mode or self.mode
        if m not in self._spsr:
            raise KeyError(f"mode {m} has no SPSR")
        self._spsr[m] = value & 0xFFFF_FFFF

    # -- context save/restore (used by the vCPU switch) --------------------

    def snapshot_user(self) -> dict:
        """Capture everything a vCPU must hold for a de-privileged guest."""
        return {
            "low": list(self._low),
            "mid": list(self._mid_usr),
            "sp_usr": self._sp_usr,
            "lr_usr": self._lr_usr,
            "pc": self.pc,
            "cpsr": self.cpsr,
        }

    def restore_user(self, snap: dict) -> None:
        self._low[:] = snap["low"]
        self._mid_usr[:] = snap["mid"]
        self._sp_usr = snap["sp_usr"]
        self._lr_usr = snap["lr_usr"]
        self.pc = snap["pc"]
        self.cpsr = snap["cpsr"]

    #: Number of 32-bit words a user-context save/restore moves (r0-r12,
    #: sp, lr, pc, cpsr) — drives the active-switch cost in the vCPU model.
    USER_CONTEXT_WORDS = 17
