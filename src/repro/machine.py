"""Platform assembly: one simulated Zynq-7000-like machine.

Wires the DES engine, CPU, memory system, GIC, timers, and the PL side
(PRR controller + PCAP + bitstream store) onto the physical bus, matching
Fig. 4 of the paper.  Both the virtualized system (Mini-NOVA + guests) and
the native baseline run on an identical ``Machine``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .common.params import DEFAULT_PARAMS, PlatformParams
from .cpu.core import Cpu
from .fpga.bitstream import BitstreamStore
from .fpga.controller import PrrController
from .fpga.ip import PlResources
from .fpga.pcap import PCAP_WINDOW_SIZE, Pcap
from .fpga.prr import Prr
from .gic.gic import GIC_WINDOW_SIZE, Gic
from .io.uart import UART_WINDOW_SIZE, Uart
from .mem.system import MemorySystem
from .sim.engine import Simulator
from .timerhw.timers import TIMER_WINDOW_SIZE, GlobalTimer, PrivateTimer

# Physical placement of devices (our SoC's memory map).
GIC_BASE = 0xF8F0_0000
PRIV_TIMER_BASE = 0xF8F0_2000
GLOBAL_TIMER_BASE = 0xF8F0_2200
PCAP_BASE = 0xF800_7000
UART_BASE = 0xE000_0000

#: Large PRR — fits every FFT plus the QAM cores (paper: PRR1/PRR2).
PRR_LARGE = PlResources(luts=26_000, bram=24, dsp=64)
#: Small PRR — QAM-class tasks only (paper: PRR3/PRR4).
PRR_SMALL = PlResources(luts=2_200, bram=4, dsp=8)


@dataclass
class MachineConfig:
    """What to build: platform knobs + fabric floorplan + task library."""

    params: PlatformParams = field(default_factory=lambda: DEFAULT_PARAMS)
    #: Capacity of each PRR, in order (paper evaluation: 2 large + 2 small).
    prr_capacities: tuple[PlResources, ...] = (PRR_LARGE, PRR_LARGE,
                                               PRR_SMALL, PRR_SMALL)
    #: Hardware tasks whose bitstreams are installed at boot.
    tasks: tuple[str, ...] = ("fft256", "fft512", "fft1024", "fft2048",
                              "fft4096", "fft8192", "qam4", "qam16", "qam64")


class Machine:
    """A powered-on platform, before any kernel boots on it."""

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config or MachineConfig()
        params = self.config.params
        self.params = params
        self.sim = Simulator()
        self.mem = MemorySystem(params)
        self.cpu = Cpu(self.sim, self.mem, params)
        self.gic = Gic()
        self.gic.irq_line_cb = self._set_irq_line
        self.private_timer = PrivateTimer(self.sim, self.gic)
        self.global_timer = GlobalTimer(self.sim)
        self.uart = Uart()

        self.prrs = [Prr(prr_id=i, capacity=cap)
                     for i, cap in enumerate(self.config.prr_capacities)]
        self.prr_controller = PrrController(
            self.sim, self.gic, self.mem.bus, self.prrs, params.fpga,
            params.cpu.hz)
        self.pcap = Pcap(self.sim, self.gic, self.prr_controller,
                         params.fpga, params.cpu.hz)
        self.bitstreams = BitstreamStore(self.mem.bus, self.mem.kernel_frames)
        for task in self.config.tasks:
            self.bitstreams.install(task)

        bus = self.mem.bus
        bus.map_device(GIC_BASE, GIC_WINDOW_SIZE, self.gic, "gic")
        bus.map_device(PRIV_TIMER_BASE, TIMER_WINDOW_SIZE,
                       self.private_timer, "private-timer")
        bus.map_device(GLOBAL_TIMER_BASE, TIMER_WINDOW_SIZE,
                       self.global_timer, "global-timer")
        bus.map_device(PCAP_BASE, PCAP_WINDOW_SIZE, self.pcap, "pcap")
        bus.map_device(UART_BASE, UART_WINDOW_SIZE, self.uart, "uart0")
        bus.map_device(params.memmap.prr_reg_base,
                       self.prr_controller.window_size,
                       self.prr_controller, "prr-controller")

    def _set_irq_line(self, level: bool) -> None:
        self.cpu.irq_line = level

    @property
    def now(self) -> int:
        return self.sim.clock.now

    def prr_reg_page_paddr(self, prr_id: int) -> int:
        """Physical base of PRR ``prr_id``'s register-group page."""
        return self.params.memmap.prr_reg_base + prr_id * 4096

    def prr_ctl_page_paddr(self) -> int:
        """Physical base of the controller's manager-only control page."""
        return self.params.memmap.prr_reg_base + len(self.prrs) * 4096
