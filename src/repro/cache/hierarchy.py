"""L1I / L1D / unified-L2 hierarchy with latency accounting.

Mirrors the platform of the paper: 32 KB split L1 caches and a 512 KB
unified L2, all physically tagged, so VM switches need no cache flush
(Section III-C) — the cost of multiplexing shows up purely as capacity
and conflict misses, which is the effect Table III measures.
"""

from __future__ import annotations

from enum import Enum

from ..common.params import PlatformParams
from .level import CacheLevel, CacheStats


class AccessKind(Enum):
    """What kind of agent is touching memory."""

    FETCH = "fetch"      # instruction fetch -> L1I
    DATA = "data"        # load/store        -> L1D
    WALK = "walk"        # MMU page-table walk -> L2 only (A9-style PTW)


class CacheHierarchy:
    """Two-level hierarchy; `access` returns the latency in CPU cycles."""

    def __init__(self, params: PlatformParams) -> None:
        self.params = params
        self.l1i = CacheLevel(params.l1i, "L1I")
        self.l1d = CacheLevel(params.l1d, "L1D")
        self.l2 = CacheLevel(params.l2, "L2")
        t = params.cpu
        self._lat_l1 = t.l1_hit
        self._lat_l2 = t.l2_hit
        self._lat_dram = t.dram
        #: DRAM accesses that missed everywhere (for bandwidth accounting).
        self.dram_accesses = 0

    def access(self, paddr: int, *, write: bool = False,
               kind: AccessKind = AccessKind.DATA) -> int:
        """Simulate one access; returns total added latency in cycles."""
        if kind is AccessKind.WALK:
            hit2, victim = self.l2.lookup(paddr, write=False)
            if hit2:
                return self._lat_l2
            self.dram_accesses += 1
            lat = self._lat_l2 + self._lat_dram
            if victim is not None:
                lat += self._wb_cost()
            return lat

        l1 = self.l1i if kind is AccessKind.FETCH else self.l1d
        hit1, victim1 = l1.lookup(paddr, write=write)
        lat = self._lat_l1
        if hit1:
            return lat
        # L1 victim writeback lands in L2 (write-back, allocate-on-write).
        if victim1 is not None:
            self.l2.fill(victim1 << (self.params.l1d.line.bit_length() - 1), write=True)
        hit2, victim2 = self.l2.lookup(paddr, write=False)
        lat += self._lat_l2
        if not hit2:
            self.dram_accesses += 1
            lat += self._lat_dram
            if victim2 is not None:
                lat += self._wb_cost()
        return lat

    def _wb_cost(self) -> int:
        # A dirty L2 victim goes to DRAM; posted writes hide most latency.
        return self._lat_dram // 4

    # -- maintenance (targets of guest cache-op hypercalls) -------------

    def flush_all(self) -> int:
        """Clean+invalidate everything; returns cost in cycles."""
        wb = self.l1i.clean_invalidate_all()
        wb += self.l1d.clean_invalidate_all()
        wb += self.l2.clean_invalidate_all()
        # Cost model: fixed sweep cost plus per-writeback DRAM traffic.
        lines = (self.params.l1i.sets * self.params.l1i.ways
                 + self.params.l1d.sets * self.params.l1d.ways
                 + self.params.l2.sets * self.params.l2.ways)
        return lines // 8 + wb * self._wb_cost()

    def invalidate_line(self, paddr: int) -> int:
        self.l1i.invalidate_line(paddr)
        self.l1d.invalidate_line(paddr)
        self.l2.invalidate_line(paddr)
        return 3

    # -- introspection ---------------------------------------------------

    def snapshot(self) -> dict[str, CacheStats]:
        return {
            "l1i": self.l1i.stats.snapshot(),
            "l1d": self.l1d.stats.snapshot(),
            "l2": self.l2.stats.snapshot(),
        }
