"""One set-associative, physically-tagged, write-back cache level.

The model tracks tags and dirty bits only (contents live in the functional
memory model); it exists to produce *timing* — hits, misses, evictions and
writebacks — which is what Table III's trends are made of.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..common.params import CacheParams


@dataclass
class CacheStats:
    """Counters for one cache level."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def snapshot(self) -> "CacheStats":
        return CacheStats(self.hits, self.misses, self.evictions, self.writebacks)

    def delta(self, earlier: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.hits - earlier.hits,
            self.misses - earlier.misses,
            self.evictions - earlier.evictions,
            self.writebacks - earlier.writebacks,
        )


class CacheLevel:
    """LRU set-associative cache with write-back / write-allocate policy."""

    def __init__(self, params: CacheParams, name: str = "cache") -> None:
        self.params = params
        self.name = name
        self._offset_bits = params.line.bit_length() - 1
        self._sets = params.sets
        self._ways = params.ways
        # Per set: list of line tags, most-recently-used first.
        self._tags: list[list[int]] = [[] for _ in range(self._sets)]
        self._dirty: list[set[int]] = [set() for _ in range(self._sets)]
        # Incrementally-maintained line count; the occupancy ratio is read
        # on every sampled access (MemorySystem.sample_block), so it must
        # not cost an O(sets) scan.
        self._resident = 0
        self.stats = CacheStats()

    # -- address helpers -------------------------------------------------

    def _index(self, paddr: int) -> tuple[int, int]:
        line = paddr >> self._offset_bits
        return line % self._sets, line

    # -- core operations ---------------------------------------------------

    def probe(self, paddr: int) -> bool:
        """True when the line is present (no state change)."""
        setidx, tag = self._index(paddr)
        return tag in self._tags[setidx]

    def fill(self, paddr: int, *, write: bool = False) -> int | None:
        """Insert/refresh a line; returns dirty victim line address if any."""
        setidx, tag = self._index(paddr)
        ways = self._tags[setidx]
        victim_wb: int | None = None
        if tag in ways:
            if ways[0] != tag:
                ways.remove(tag)
                ways.insert(0, tag)
        else:
            if len(ways) >= self._ways:
                victim = ways.pop()
                self.stats.evictions += 1
                self._resident -= 1
                if victim in self._dirty[setidx]:
                    self._dirty[setidx].discard(victim)
                    self.stats.writebacks += 1
                    victim_wb = victim
            ways.insert(0, tag)
            self._resident += 1
        if write:
            self._dirty[setidx].add(tag)
        return victim_wb

    def lookup(self, paddr: int, *, write: bool = False) -> tuple[bool, int | None]:
        """Probe + fill in one step, with correct hit/miss accounting.

        Fused single-set-scan formulation of ``probe`` + ``fill`` — the
        hot path of every modelled access (docs/PERFORMANCE.md §2).
        """
        line = paddr >> self._offset_bits
        setidx = line % self._sets
        tag = line
        ways = self._tags[setidx]
        victim_wb: int | None = None
        if tag in ways:
            self.stats.hits += 1
            hit = True
            if ways[0] != tag:
                ways.remove(tag)
                ways.insert(0, tag)
        else:
            self.stats.misses += 1
            hit = False
            if len(ways) >= self._ways:
                victim = ways.pop()
                self.stats.evictions += 1
                self._resident -= 1
                if victim in self._dirty[setidx]:
                    self._dirty[setidx].discard(victim)
                    self.stats.writebacks += 1
                    victim_wb = victim
            ways.insert(0, tag)
            self._resident += 1
        if write:
            self._dirty[setidx].add(tag)
        return hit, victim_wb

    # -- maintenance -------------------------------------------------------

    def invalidate_all(self) -> None:
        """Drop every line without writing back (as after a reset)."""
        for s in self._tags:
            s.clear()
        for d in self._dirty:
            d.clear()
        self._resident = 0

    def clean_invalidate_all(self) -> int:
        """Write back all dirty lines and drop everything; returns WB count."""
        wb = sum(len(d) for d in self._dirty)
        self.stats.writebacks += wb
        self.invalidate_all()
        return wb

    def invalidate_line(self, paddr: int) -> bool:
        """Drop one line if present; returns True when it was present."""
        setidx, tag = self._index(paddr)
        ways = self._tags[setidx]
        if tag in ways:
            ways.remove(tag)
            self._dirty[setidx].discard(tag)
            self._resident -= 1
            return True
        return False

    def clear_random_sets(self, frac: float, rng) -> int:
        """Statistical pressure model: drop every line of a random ``frac``
        of the sets (used to amplify sampled workload traffic back to the
        full stream's fill rate — see MemorySystem.sample_block).  Returns
        the number of lines dropped."""
        n_sets = max(1, int(self._sets * frac))
        dropped = 0
        for idx in rng.choice(self._sets, size=n_sets, replace=False):
            dropped += len(self._tags[idx])
            self._tags[idx].clear()
            self._dirty[idx].clear()
        self.stats.evictions += dropped
        self._resident -= dropped
        return dropped

    @property
    def resident_lines(self) -> int:
        return self._resident
