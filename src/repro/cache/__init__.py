"""Set-associative cache models (L1 I/D + unified L2)."""

from .hierarchy import AccessKind, CacheHierarchy
from .level import CacheLevel, CacheStats

__all__ = ["AccessKind", "CacheHierarchy", "CacheLevel", "CacheStats"]
