"""Discrete-event simulation engine."""

from .engine import Clock, EventHandle, Simulator

__all__ = ["Clock", "EventHandle", "Simulator"]
