"""Discrete-event core: integer-cycle clock, cancellable events, dispatcher.

The simulation is *CPU-driven*: the machine advances the clock while the
modelled CPU executes, then asks the engine to fire every event that became
due.  When the CPU idles, the engine fast-forwards the clock to the next
event.  All times are integer CPU cycles (see :mod:`repro.common.units`).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from ..common.errors import SimulationError


class Clock:
    """Monotonic integer cycle counter."""

    __slots__ = ("now",)

    def __init__(self) -> None:
        self.now: int = 0

    def advance(self, dcycles: int) -> int:
        """Move time forward by ``dcycles`` (>= 0) and return the new time."""
        if dcycles < 0:
            raise SimulationError(f"clock cannot move backwards ({dcycles})")
        self.now += dcycles
        return self.now

    def advance_to(self, t: int) -> int:
        """Move time forward to absolute cycle ``t`` (>= now)."""
        if t < self.now:
            raise SimulationError(f"clock cannot move backwards (to {t}, now {self.now})")
        self.now = t
        return self.now


@dataclass(order=True)
class _QueuedEvent:
    time: int
    seq: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("time", "fn", "args", "cancelled", "fired", "label")

    def __init__(self, time: int, fn: Callable[..., Any], args: tuple,
                 label: str = "") -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self.fired = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent; no-op if already fired)."""
        self.cancelled = True

    @property
    def pending(self) -> bool:
        return not (self.cancelled or self.fired)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self.fired else ("cancelled" if self.cancelled else "pending")
        return f"<Event {self.label or self.fn.__name__} @{self.time} {state}>"


class Simulator:
    """Clock + event queue.  One instance per simulated machine."""

    def __init__(self) -> None:
        self.clock = Clock()
        self._queue: list[_QueuedEvent] = []
        self._seq = itertools.count()
        #: Total events fired, for sanity checks in tests.
        self.fired_count = 0
        # Optional observability counters (attached by the kernel at boot;
        # see docs/OBSERVABILITY.md): events scheduled/fired, idle skips.
        self._m_scheduled = None
        self._m_fired = None
        self._m_idle = None
        self._m_idle_cycles = None
        # Optional per-VM accountant (attached by the kernel at boot): its
        # idle ledger is fed from here, because only the engine knows how
        # far an idle fast-forward jumped.
        self._accounting = None
        # Optional telemetry stream (repro.obs.stream): an *observational*
        # tap consulted after dispatch.  It never schedules events, so the
        # queue, the idle jump targets and every cycle-exact series are
        # identical with streaming on or off.
        self._stream = None

    def attach_metrics(self, metrics) -> None:
        """Mirror engine activity into a
        :class:`~repro.obs.metrics.MetricsRegistry` (``sim.*`` counters)."""
        self._m_scheduled = metrics.counter("sim.events_scheduled")
        self._m_fired = metrics.counter("sim.events_fired")
        self._m_idle = metrics.counter("sim.idle_advances")
        self._m_idle_cycles = metrics.counter("sim.idle_cycles")

    def attach_accounting(self, accounting) -> None:
        """Report idle fast-forwards to a
        :class:`~repro.obs.accounting.VmAccounting` (``charge_idle``)."""
        self._accounting = accounting

    def attach_stream(self, stream) -> None:
        """Attach a :class:`~repro.obs.stream.TelemetryStream` tap.

        The dispatcher calls ``stream.on_tick(now)`` whenever the clock
        has crossed ``stream.next_due`` — a cadence check, not an event:
        emission consumes zero simulated cycles.
        """
        self._stream = stream

    def detach_stream(self, stream) -> None:
        """Remove the tap (idempotent; ignores a stale stream)."""
        if self._stream is stream:
            self._stream = None

    # -- scheduling ----------------------------------------------------

    def schedule(self, delay: int, fn: Callable[..., Any], *args: Any,
                 label: str = "") -> EventHandle:
        """Schedule ``fn(*args)`` to run ``delay`` cycles from now."""
        return self.schedule_at(self.clock.now + delay, fn, *args, label=label)

    def schedule_at(self, t: int, fn: Callable[..., Any], *args: Any,
                    label: str = "") -> EventHandle:
        """Schedule ``fn(*args)`` at absolute cycle ``t`` (>= now)."""
        if t < self.clock.now:
            raise SimulationError(f"cannot schedule event in the past ({t} < {self.clock.now})")
        handle = EventHandle(t, fn, args, label)
        heapq.heappush(self._queue, _QueuedEvent(t, next(self._seq), handle))
        if self._m_scheduled is not None:
            self._m_scheduled.inc()
        return handle

    def defer(self, handle: EventHandle, extra: int) -> EventHandle:
        """Reschedule a pending event ``extra`` cycles later.

        Cancels ``handle`` and returns a fresh handle for the same
        ``fn(*args)`` at ``max(handle.time + extra, now)``.  Used by fault
        injection to model stalls (e.g. a hung PCAP transfer) without the
        device code knowing how its completion was delayed.
        """
        if not handle.pending:
            raise SimulationError(f"cannot defer non-pending event {handle!r}")
        handle.cancel()
        t = max(handle.time + extra, self.clock.now)
        return self.schedule_at(t, handle.fn, *handle.args, label=handle.label)

    # -- dispatching ---------------------------------------------------

    def _pop_due(self, t: int) -> EventHandle | None:
        while self._queue and self._queue[0].time <= t:
            ev = heapq.heappop(self._queue).handle
            if not ev.cancelled:
                return ev
        return None

    def dispatch_due(self) -> int:
        """Fire every pending event with time <= now; return count fired.

        Events fired may schedule further events; those are honoured within
        the same call if already due.
        """
        n = 0
        while (ev := self._pop_due(self.clock.now)) is not None:
            ev.fired = True
            self.fired_count += 1
            if self._m_fired is not None:
                self._m_fired.inc()
            ev.fn(*ev.args)
            n += 1
        s = self._stream
        if s is not None and self.clock.now >= s.next_due:
            s.on_tick(self.clock.now)
        return n

    def next_event_time(self) -> int | None:
        """Time of the earliest pending event, or None when queue is empty."""
        while self._queue and self._queue[0].handle.cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def advance_to_next_event(self) -> bool:
        """Idle fast-forward: jump the clock to the next event and fire it.

        Returns False when no events remain (simulation is quiescent).
        """
        t = self.next_event_time()
        if t is None:
            return False
        if self._m_idle is not None:
            self._m_idle.inc()
        skipped = max(0, t - self.clock.now)
        if skipped:
            if self._m_idle_cycles is not None:
                self._m_idle_cycles.inc(skipped)
            if self._accounting is not None:
                # Before the jump, so the accountant settles the open
                # context first and books the gap as idle.
                self._accounting.charge_idle(skipped)
        self.clock.advance_to(max(t, self.clock.now))
        self.dispatch_due()
        return True

    def run_until(self, t: int) -> None:
        """Fire events in order up to absolute cycle ``t`` (clock ends at t)."""
        while True:
            nxt = self.next_event_time()
            if nxt is None or nxt > t:
                break
            self.clock.advance_to(max(nxt, self.clock.now))
            self.dispatch_due()
        self.clock.advance_to(max(t, self.clock.now))

    @property
    def now(self) -> int:
        return self.clock.now

    @property
    def pending_count(self) -> int:
        return sum(1 for e in self._queue if e.handle.pending)
