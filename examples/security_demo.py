#!/usr/bin/env python
"""Security mechanisms of Section IV-C, demonstrated live.

Three scenes:
1. **hwMMU** — a guest programs its hardware task to DMA into another
   VM's memory; the PRR controller blocks the transfer and the victim's
   data survives untouched.
2. **Exclusive interface mapping** — when a PRR is reclaimed for another
   VM, the old client's register-group page disappears from its address
   space; a stale access traps as a page fault handled by the guest OS,
   and the consistency flag in its data section tells it why.
3. **DACR split** — guest-user code cannot see guest-kernel pages, and
   nobody in PL0 can see the microkernel.
"""

from __future__ import annotations

from repro.common.errors import DataAbort
from repro.eval.scenarios import build_virtualized
from repro.fpga.prr import CTRL_START, PrrStatus, REG_CTRL, REG_DST, REG_LEN, REG_SRC
from repro.kernel import layout as L
from repro.kernel.memory import DACR_GUEST_KERNEL, DACR_GUEST_USER


def scene_1_hwmmu(sc) -> None:
    print("--- Scene 1: hwMMU blocks cross-VM DMA " + "-" * 30)
    kernel, machine = sc.kernel, sc.machine
    # Whoever currently owns a PRR plays the attacker; the other guest is
    # the victim.
    prr = next(p for p in machine.prrs if p.client_vm is not None)
    attacker = kernel.pd_of(prr.client_vm)
    victim = next(pd for pd in kernel.domains.values()
                  if pd.name.startswith("vm") and pd is not attacker)
    secret = victim.phys_base + L.GUEST_HWDATA_VA
    machine.mem.bus.dram.write_bytes(secret, b"victim-secret!" * 4)
    page = prr.prr_id * 4096
    ctl = machine.prr_controller
    ctl.mmio_write(page + REG_SRC, attacker.hw_data.pa + 64)
    ctl.mmio_write(page + REG_LEN, 512)
    ctl.mmio_write(page + REG_DST, secret)          # out of its window
    ctl.mmio_write(page + REG_CTRL, CTRL_START)
    status = PrrStatus(ctl.mmio_read(page + 0x04))
    survived = machine.mem.bus.dram.read_bytes(secret, 14) == b"victim-secret!"
    print(f"  attacker VM{attacker.vm_id} aimed PRR{prr.prr_id} DMA at "
          f"VM{victim.vm_id}'s section: status={status.name}")
    print(f"  hwMMU violations recorded: {prr.violations}")
    print(f"  victim memory intact: {survived}")
    assert status == PrrStatus.ERR_BOUNDS and survived


def scene_2_reclaim(sc) -> None:
    print("--- Scene 2: reclaim demaps the interface " + "-" * 27)
    kernel, machine = sc.kernel, sc.machine
    vm1 = next(pd for pd in kernel.domains.values()
               if pd.name.startswith("vm") and pd.prr_iface)
    prr_id = next(iter(vm1.prr_iface))
    # The manager reclaims it (as it would for another VM's request).
    kernel.service_save_reggroup(vm1, prr_id, machine.prrs[prr_id].reg_snapshot())
    kernel.service_unmap_iface(vm1, prr_id)
    flag = int.from_bytes(
        machine.mem.bus.dram.read_bytes(vm1.hw_data.pa, 4), "little")
    print(f"  PRR{prr_id} reclaimed from VM{vm1.vm_id}; "
          f"consistency flag in its data section = {flag}")
    kernel._vm_switch(vm1)
    try:
        machine.mem.read32(L.GUEST_PRR_IFACE_VA, privileged=False)
        print("  !! stale access succeeded — BUG")
        raise SystemExit(1)
    except DataAbort as e:
        print(f"  stale access to the old interface page: {e}")
    assert flag == 1


def scene_3_dacr(sc) -> None:
    print("--- Scene 3: DACR separation inside PL0 " + "-" * 29)
    kernel, machine = sc.kernel, sc.machine
    vm1 = kernel.pd_of(2)
    kernel._vm_switch(vm1)
    cpu = machine.cpu
    cpu.sysregs.write("DACR", DACR_GUEST_KERNEL, privileged=True)
    machine.mem.touch(L.GUEST_KERNEL_DATA, privileged=False)
    print("  guest-kernel view: guest kernel data accessible")
    cpu.sysregs.write("DACR", DACR_GUEST_USER, privileged=True)
    try:
        machine.mem.touch(L.GUEST_KERNEL_DATA, privileged=False)
        raise SystemExit("guest user saw guest kernel — BUG")
    except DataAbort as e:
        print(f"  guest-user view:   {e}")
    try:
        machine.mem.touch(L.KERNEL_BASE, privileged=False)
        raise SystemExit("PL0 saw the microkernel — BUG")
    except DataAbort as e:
        print(f"  microkernel from PL0: {e}")


def main() -> None:
    print("=== Mini-NOVA security demo (Section IV-C) ===")
    sc = build_virtualized(2, seed=99, iterations=2, with_workloads=False,
                           task_set=("qam16",))
    sc.run_until_completions(4, max_ms=4000)
    scene_1_hwmmu(sc)
    scene_2_reclaim(sc)
    scene_3_dacr(sc)
    print("all security properties held.")


if __name__ == "__main__":
    main()
