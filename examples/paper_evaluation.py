#!/usr/bin/env python
"""The paper's full evaluation (Section V): Table III and Fig. 9.

Runs the native baseline plus 1-4 guest configurations of Fig. 8 — each
guest executing GSM encoding + ADPCM compression plus the T_hw random
hardware-task requester over FFT{256..8192} and QAM{4,16,64} on 4 PRRs —
and prints the regenerated Table III and Fig. 9 next to the paper's
numbers.

Takes a couple of minutes (it simulates ~2 s of 660 MHz machine time
across five full-system configurations).
"""

from __future__ import annotations

import argparse
import time

from repro.eval.fig9 import PAPER_FIG9, degradation_from_table3
from repro.eval.table3 import PAPER_TABLE3, ROW_LABELS, ROW_ORDER, run_table3


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--completions", type=int, default=60,
                    help="T_hw requests measured per configuration")
    ap.add_argument("--seed", type=int, default=1)
    args = ap.parse_args()

    t0 = time.time()
    t3 = run_table3(completions_per_config=args.completions, seed=args.seed,
                    max_ms=8000.0)
    print(t3.format())
    print()
    print("PAPER TABLE III (us):")
    header = "".join(["  class".ljust(26)] + [str(c).rjust(9)
                                              for c in ("native", 1, 2, 3, 4)])
    print(header)
    for row in ROW_ORDER:
        cells = [f"  {ROW_LABELS[row]:24s}"]
        for col in ("native", 1, 2, 3, 4):
            cells.append(f"{PAPER_TABLE3[col][row]:9.2f}")
        print("".join(cells))

    print()
    fig9 = degradation_from_table3(t3)
    print(fig9.format())
    print()
    print("PAPER FIG. 9:")
    for row in ROW_ORDER:
        cells = [f"  {row:14s}"]
        for n in (1, 2, 3, 4):
            cells.append(f"{PAPER_FIG9[row][n]:8.3f}")
        print("".join(cells))

    print()
    print(f"(wall-clock: {time.time() - t0:.0f} s)")


if __name__ == "__main__":
    main()
