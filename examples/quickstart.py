#!/usr/bin/env python
"""Quickstart: boot Mini-NOVA, run one guest, offload an FFT to the fabric.

Builds the full simulated Zynq-7000 platform, boots the microkernel with
the Hardware Task Manager service and a single paravirtualized uC/OS-II
guest, lets the guest request an fft1024 hardware task through the
3-argument hypercall of Section IV-E, and verifies the DMA'd result
against NumPy.
"""

from __future__ import annotations

import numpy as np

from repro.common.units import cycles_to_ms, cycles_to_us
from repro.dsp import fft as fft_golden
from repro.eval.scenarios import build_virtualized
from repro.guest import api
from repro.guest.actions import Delay, Finish
from repro.kernel.hypercalls import HcStatus


def main() -> None:
    # A scenario with no pre-installed tasks: we add our own below.
    sc = build_virtualized(n_guests=1, seed=7, with_workloads=False,
                           iterations=0, task_set=("fft1024",))
    os_ = sc.guests[0].os
    results: dict = {}

    rng = np.random.default_rng(1234)
    signal = (rng.standard_normal(1024)
              + 1j * rng.standard_normal(1024)).astype(np.complex64)

    def fft_client(os):
        sem = os.create_semaphore("fft-done")
        handle = yield from api.hw_task_run(
            os, sc.directory["fft1024"], "fft1024", signal.tobytes(), sem=sem)
        results["handle"] = handle
        yield Finish()

    os_.create_task("fft-client", 6, fft_client)

    sc.kernel.run(until=lambda: "handle" in results,
                  until_cycles=660_000_000)   # 1 s cap

    handle = results["handle"]
    assert handle.status == HcStatus.SUCCESS, handle
    got = np.frombuffer(handle.output, dtype=np.complex64)
    want = fft_golden.fft(signal)
    ok = np.allclose(got, want, rtol=1e-3, atol=1e-2)

    m = sc.machine
    print("=== Mini-NOVA quickstart ===")
    print(f"simulated time:        {cycles_to_ms(m.now):8.2f} ms")
    print(f"hardware task:         fft1024 on PRR{handle.prr_id} "
          f"(reconfigured: {handle.reconfigured})")
    print(f"PL IRQ used:           {handle.irq_id}")
    print(f"result matches NumPy:  {ok}")
    print(f"hypercalls served:     {sc.kernel.hypercall_count}")
    print(f"VM switches:           {sc.kernel.vm_switch_count}")
    print(f"PCAP transfers:        {m.pcap.transfers} "
          f"({m.pcap.bytes_moved / 1024:.0f} KiB streamed)")
    l1d = m.mem.caches.l1d.stats
    print(f"L1D accesses/misses:   {l1d.accesses}/{l1d.misses}")
    if not ok:
        raise SystemExit("FFT result mismatch!")


if __name__ == "__main__":
    main()
