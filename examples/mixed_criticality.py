#!/usr/bin/env python
"""Mixed-criticality hosting — the motivation of the paper's introduction.

A real-time control VM (paper: 'applications with tighter time constraints
... are given higher priority level, so that they can preempt general-
purpose guest OSes') shares the platform with two best-effort VMs running
heavy signal-processing workloads.  The demo measures the control task's
activation jitter in two configurations:

* RT VM at a higher VM priority (the paper's design) — activations stay
  tick-accurate because the RT VM preempts the busy guests;
* RT VM at the same priority — activations are at the mercy of the 33 ms
  round-robin and jitter explodes.
"""

from __future__ import annotations

import statistics

from repro.common.units import cycles_to_ms, cycles_to_us, ms_to_cycles
from repro.eval.scenarios import build_virtualized
from repro.guest.actions import Compute, Delay, Finish
from repro.guest.ucos import Ucos
from repro.guest.ports.paravirt import ParavirtUcos


def control_vm(sc, *, vm_priority: int, periods: int = 40):
    """Add an RT guest whose control task runs every 2 OS ticks (20 ms)."""
    activations: list[int] = []
    os_ = Ucos("rt-control", tick_hz=100)

    def control_task(os):
        for _ in range(periods):
            activations.append(sc.machine.now)
            # A short control-law computation (~45 us).
            yield Compute(30_000, 2_000, ((0x0040_0000, 16 * 1024),))
            yield Delay(2)
        yield Finish()

    os_.create_task("control", 4, control_task)
    sc.kernel.create_vm("rt-control", ParavirtUcos(os_),
                        priority=vm_priority)
    return activations


def run(vm_priority: int) -> list[float]:
    sc = build_virtualized(2, seed=5, with_workloads=True, iterations=None,
                           task_set=("fft4096", "qam16"))
    acts = control_vm(sc, vm_priority=vm_priority)
    sc.kernel.run(until=lambda: len(acts) >= 40,
                  until_cycles=ms_to_cycles(4000))
    hz = sc.machine.params.cpu.hz
    periods = [cycles_to_ms(b - a, hz) for a, b in zip(acts, acts[1:])]
    return periods


def describe(label: str, periods: list[float]) -> float:
    mean = statistics.mean(periods)
    jitter = statistics.pstdev(periods)
    worst = max(abs(p - 20.0) for p in periods)
    print(f"  {label:34s} mean {mean:6.2f} ms   "
          f"jitter {jitter:6.3f} ms   worst dev {worst:7.3f} ms")
    return worst


def main() -> None:
    print("=== Mixed criticality: RT control VM + 2 busy guests ===")
    print("control task period: 20 ms (2 OS ticks)")
    high = run(vm_priority=3)        # above the guests (paper design)
    same = run(vm_priority=1)        # equal round-robin citizen
    worst_high = describe("RT VM above guests (paper):", high)
    worst_same = describe("RT VM at guest priority:", same)
    print()
    if worst_high * 3 < worst_same:
        print("priority hosting keeps the control loop tick-accurate; "
              "round-robin sharing does not.")
    else:
        print("WARNING: expected a clearer separation — check scheduling!")


if __name__ == "__main__":
    main()
