#!/usr/bin/env python
"""Inter-VM communication: a two-VM signal-processing pipeline.

VM1 (producer) encodes audio blocks with IMA-ADPCM and publishes each
block's checksum + length over Mini-NOVA's IVC channel; VM2 (consumer)
receives the notifications through its vGIC (IVC vIRQ), tallies them,
and acknowledges back.  Demonstrates the microkernel's third property —
communication — end to end: hypercall -> kernel mailbox -> vIRQ ->
receiving guest's ISR -> IVC_RECV.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import make_rng
from repro.common.units import cycles_to_ms
from repro.dsp import adpcm
from repro.eval.scenarios import build_virtualized
from repro.guest.actions import BindIrqSem, Compute, Delay, Finish, Hypercall, SemPend
from repro.kernel.hypercalls import Hc, HcStatus
from repro.kernel.ivc import IVC_IRQ
from repro.workloads.profiles import ADPCM_BLOCK

N_BLOCKS = 12


def main() -> None:
    sc = build_virtualized(2, seed=77, with_workloads=False, iterations=0,
                           task_set=("qam4",))
    prod_os = sc.guests[0].os
    cons_os = sc.guests[1].os
    consumer_vm_id = sc.kernel.pd_of(3).vm_id       # vm2 (manager is id 1)
    log = {"sent": [], "received": [], "acks": 0}

    def producer(os):
        rng = make_rng(1, stream="audio")
        state = adpcm.AdpcmState()
        for i in range(N_BLOCKS):
            pcm = (rng.standard_normal(1024) * 6000).astype(np.int16)
            codes = adpcm.encode(pcm, state)
            checksum = int(codes.sum()) & 0xFFFF_FFFF
            yield Compute(ADPCM_BLOCK.instrs, ADPCM_BLOCK.mem_accesses,
                          ((0x0040_0000, ADPCM_BLOCK.ws_bytes),))
            status = yield Hypercall(int(Hc.IVC_SEND),
                                     (consumer_vm_id, i, checksum, len(codes)))
            assert status == HcStatus.SUCCESS
            log["sent"].append((i, checksum))
            yield Delay(1)
        yield Finish()

    def consumer(os):
        sem = os.create_semaphore("ivc")
        yield BindIrqSem(IVC_IRQ, sem)
        while len(log["received"]) < N_BLOCKS:
            yield SemPend(sem, timeout_ticks=50)
            while True:
                msg = yield Hypercall(int(Hc.IVC_RECV), ())
                if msg is None:
                    break
                src, seq, checksum, nbytes = msg
                log["received"].append((seq, checksum))
                log["acks"] += 1
        yield Finish()

    prod_os.create_task("adpcm-producer", 6, producer)
    cons_os.create_task("ivc-consumer", 6, consumer)
    sc.kernel.run(until=lambda: len(log["received"]) >= N_BLOCKS,
                  until_cycles=sc.machine.now + 3 * 660_000_000)

    print("=== IVC pipeline (VM1 -> VM2) ===")
    print(f"blocks sent:     {len(log['sent'])}")
    print(f"blocks received: {len(log['received'])}")
    print(f"in order + checksums match: "
          f"{log['received'] == log['sent']}")
    print(f"simulated time:  {cycles_to_ms(sc.machine.now):.1f} ms")
    print(f"IVC messages routed by the kernel: {sc.kernel.ivc.sent}")
    if log["received"] != log["sent"]:
        raise SystemExit("pipeline corrupted!")


if __name__ == "__main__":
    main()
